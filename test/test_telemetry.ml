(* Tests for the telemetry layer: domain-local counter aggregation, the
   hand-rolled JSON emitter/parser, and Chrome trace export.

   Telemetry state is global; every test resets and disables it on the way
   out so tests stay order-independent. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_telemetry ?tracing f =
  Telemetry.reset ();
  Telemetry.enable ?tracing ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_inert () =
  Telemetry.disable ();
  Telemetry.reset ();
  Telemetry.bump Telemetry.Counter.Btree_restarts;
  Telemetry.add Telemetry.Counter.Pool_busy_ns 1_000;
  let s = Telemetry.snapshot () in
  check_int "no counts recorded while disabled" 0
    (Telemetry.get s Telemetry.Counter.Btree_restarts);
  check_bool "no shards recorded" true (s.Telemetry.per_domain = [])

let test_single_domain_counts () =
  with_telemetry (fun () ->
      for _ = 1 to 42 do
        Telemetry.bump Telemetry.Counter.Olock_write_aborts
      done;
      Telemetry.add Telemetry.Counter.Eval_delta_tuples 1234;
      let s = Telemetry.snapshot () in
      check_int "bump counts exactly" 42
        (Telemetry.get s Telemetry.Counter.Olock_write_aborts);
      check_int "add counts exactly" 1234
        (Telemetry.get s Telemetry.Counter.Eval_delta_tuples);
      check_int "untouched counter stays zero" 0
        (Telemetry.get s Telemetry.Counter.Btree_leaf_splits))

let test_multi_domain_aggregation () =
  (* >= 4 domains each bump their own shard; the snapshot must sum them and
     report each domain separately. *)
  with_telemetry (fun () ->
      let domains = 4 and per_domain = 10_000 in
      let worker () =
        for _ = 1 to per_domain do
          Telemetry.bump Telemetry.Counter.Btree_restarts
        done
      in
      let spawned =
        List.init (domains - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      List.iter Domain.join spawned;
      let s = Telemetry.snapshot () in
      check_int "totals sum across domains" (domains * per_domain)
        (Telemetry.get s Telemetry.Counter.Btree_restarts);
      check_int "one shard per active domain" domains
        (List.length s.Telemetry.per_domain);
      let idx = Telemetry.Counter.index Telemetry.Counter.Btree_restarts in
      List.iter
        (fun (_, counts) ->
          check_int "each shard saw its own bumps" per_domain counts.(idx))
        s.Telemetry.per_domain)

let test_concurrent_btree_inserts_aggregate () =
  (* End-to-end: concurrent inserts into the specialized tuple tree must
     yield a consistent cardinality and strictly positive split counters
     (small capacity forces splits), aggregated across all inserting
     domains. *)
  with_telemetry (fun () ->
      let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] ~capacity:4 () in
      let domains = 4 and per_domain = 4_000 in
      let worker d () =
        for i = 0 to per_domain - 1 do
          let k = (d * per_domain) + i in
          ignore (Btree_tuples.insert t [| k; k lxor 5 |] : bool)
        done
      in
      let spawned =
        List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
      in
      worker 0 ();
      List.iter Domain.join spawned;
      check_int "all tuples present" (domains * per_domain)
        (Btree_tuples.cardinal t);
      Btree_tuples.check_invariants t;
      let s = Telemetry.snapshot () in
      let leaf = Telemetry.get s Telemetry.Counter.Btree_leaf_splits in
      let root = Telemetry.get s Telemetry.Counter.Btree_root_splits in
      check_bool "leaf splits observed" true (leaf > 0);
      check_bool "root splits observed" true (root > 0);
      (* a 16k-element capacity-4 tree needs at least n/4 leaf splits *)
      check_bool "split count plausible" true
        (leaf >= domains * per_domain / 8))

let test_reset_clears () =
  with_telemetry (fun () ->
      Telemetry.bump Telemetry.Counter.Pool_jobs;
      Telemetry.instant "marker";
      Telemetry.reset ();
      let s = Telemetry.snapshot () in
      check_int "counters cleared" 0
        (Telemetry.get s Telemetry.Counter.Pool_jobs);
      check_int "events cleared" 0 (Telemetry.event_count ()))

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let open Telemetry.Json in
  let doc =
    Obj
      [
        ("name", String "trace \"quoted\" \\ slash");
        ("count", Int (-42));
        ("rate", Float 0.5);
        ("flag", Bool true);
        ("nothing", Null);
        ("items", List [ Int 1; Int 2; Obj [ ("nested", Bool false) ] ]);
        ("empty_list", List []);
        ("empty_obj", Obj []);
      ]
  in
  let back = of_string (to_string doc) in
  check_bool "roundtrip preserves document" true (back = doc);
  check_string "escapes survive"
    "trace \"quoted\" \\ slash"
    (match member "name" back with Some (String s) -> s | _ -> "<missing>")

let test_json_parser_rejects_garbage () =
  let open Telemetry.Json in
  let rejects s =
    match of_string s with
    | exception Parse_error _ -> true
    | _ -> false
  in
  check_bool "bare garbage" true (rejects "nonsense");
  check_bool "unterminated string" true (rejects "\"abc");
  check_bool "trailing junk" true (rejects "{} extra");
  check_bool "unclosed object" true (rejects "{\"a\": 1")

(* ------------------------------------------------------------------ *)
(* Trace export                                                       *)
(* ------------------------------------------------------------------ *)

let read_file f = In_channel.with_open_bin f In_channel.input_all

let test_trace_export_parses_back () =
  with_telemetry ~tracing:true (fun () ->
      Telemetry.with_span ~cat:"test" "outer" (fun () ->
          Telemetry.with_span ~cat:"test" "inner" (fun () ->
              Telemetry.bump Telemetry.Counter.Btree_hint_hits);
          Telemetry.instant ~cat:"test" "tick");
      let file = Filename.temp_file "telemetry_test" ".trace.json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          Telemetry.export_trace ~process_name:"test proc" file;
          let doc = Telemetry.Json.of_string (read_file file) in
          let events =
            match Telemetry.Json.member "traceEvents" doc with
            | Some (Telemetry.Json.List l) -> l
            | _ -> Alcotest.fail "traceEvents missing or not a list"
          in
          check_bool "spans + instant + metadata present" true
            (List.length events >= 4);
          let names =
            List.filter_map
              (fun e ->
                match Telemetry.Json.member "name" e with
                | Some (Telemetry.Json.String s) -> Some s
                | _ -> None)
              events
          in
          List.iter
            (fun expected ->
              check_bool (expected ^ " event present") true
                (List.mem expected names))
            [ "outer"; "inner"; "tick"; "process_name" ];
          (* every event carries the mandatory Chrome trace fields *)
          List.iter
            (fun e ->
              match
                ( Telemetry.Json.member "ph" e,
                  Telemetry.Json.member "pid" e,
                  Telemetry.Json.member "ts" e )
              with
              | Some (Telemetry.Json.String _), Some _, Some _ -> ()
              | _ -> Alcotest.fail "event missing ph/pid/ts")
            events))

let test_counters_json_shape () =
  with_telemetry (fun () ->
      Telemetry.bump Telemetry.Counter.Btree_hint_hits;
      Telemetry.bump Telemetry.Counter.Btree_hint_misses;
      let s = Telemetry.snapshot () in
      let doc = Telemetry.counters_json s in
      (match Telemetry.Json.member "btree.hint_hits" doc with
      | Some (Telemetry.Json.Int 1) -> ()
      | _ -> Alcotest.fail "btree.hint_hits missing from counters JSON");
      match Telemetry.Json.member "btree.hint_hit_rate" doc with
      | Some (Telemetry.Json.Float r) ->
        check_bool "hit rate computed" true (Float.abs (r -. 0.5) < 1e-9)
      | _ -> Alcotest.fail "btree.hint_hit_rate missing");
  (* all-zero snapshot: rates defined, no NaN *)
  Telemetry.reset ();
  Telemetry.enable ();
  let s = Telemetry.snapshot () in
  check_bool "hint rate of empty snapshot is 0" true
    (Telemetry.hint_hit_rate s = 0.0);
  check_bool "imbalance of empty snapshot is finite" true
    (Float.is_finite (Telemetry.imbalance s));
  Telemetry.disable ();
  Telemetry.reset ()

(* ------------------------------------------------------------------ *)
(* Latency histograms                                                 *)
(* ------------------------------------------------------------------ *)

let test_hist_bucket_boundaries () =
  let module H = Telemetry.Hist in
  (* every bucket's range contains the values that map to it, ranges are
     contiguous, and bucket_of_value is monotone *)
  let samples =
    [ 0; 1; 2; 7; 8; 9; 15; 16; 17; 63; 64; 65; 1_000; 1_000_000;
      123_456_789; max_int / 2 ]
  in
  List.iter
    (fun v ->
      let b = H.bucket_of_value v in
      check_bool "bucket index in range" true (b >= 0 && b < H.bucket_count);
      let lo, hi = H.bucket_bounds b in
      check_bool
        (Printf.sprintf "value %d inside its bucket [%d,%d)" v lo hi)
        true
        (v >= lo && (v < hi || b = H.bucket_count - 1)))
    samples;
  for b = 0 to H.bucket_count - 2 do
    let _, hi = H.bucket_bounds b in
    let lo', _ = H.bucket_bounds (b + 1) in
    check_int (Printf.sprintf "buckets %d/%d contiguous" b (b + 1)) hi lo'
  done;
  let prev = ref (-1) in
  List.iter
    (fun v ->
      let b = H.bucket_of_value v in
      check_bool "bucket_of_value monotone" true (b >= !prev);
      prev := b)
    samples;
  check_int "negative clamps to bucket 0" 0 (H.bucket_of_value (-5))

let test_hist_quantile_monotone () =
  with_telemetry (fun () ->
      (* a skewed distribution: many fast ops, a long tail *)
      for i = 1 to 1_000 do
        Telemetry.hist_record Telemetry.Hist.Pool_job_ns (100 + (i mod 7))
      done;
      for _ = 1 to 20 do
        Telemetry.hist_record Telemetry.Hist.Pool_job_ns 50_000
      done;
      Telemetry.hist_record Telemetry.Hist.Pool_job_ns 9_999_999;
      let s = Telemetry.snapshot () in
      let h = Telemetry.hist_of s Telemetry.Hist.Pool_job_ns in
      check_int "total samples" 1_021 h.Telemetry.h_total;
      check_int "exact max kept" 9_999_999 h.Telemetry.h_max;
      let p50 = Telemetry.hist_quantile h 0.5 in
      let p90 = Telemetry.hist_quantile h 0.9 in
      let p99 = Telemetry.hist_quantile h 0.99 in
      check_bool "p50 <= p90" true (p50 <= p90);
      check_bool "p90 <= p99" true (p90 <= p99);
      check_bool "p99 <= max" true (p99 <= h.Telemetry.h_max);
      check_bool "p50 in the fast mode (rel. error <= 1/8)" true
        (p50 >= 90 && p50 <= 120);
      check_bool "mean between p50 and max" true
        (Telemetry.hist_mean h > float_of_int p50
        && Telemetry.hist_mean h < float_of_int h.Telemetry.h_max))

let test_hist_merge_equals_concat () =
  (* recording half the values on a spawned domain and half on the main one
     must merge to the same histogram as recording all of them on one
     domain *)
  let values_a = List.init 500 (fun i -> 10 + (i * 17 mod 5_000)) in
  let values_b = List.init 500 (fun i -> 3 + (i * 101 mod 200_000)) in
  let record vs =
    List.iter (Telemetry.hist_record Telemetry.Hist.Eval_iteration_ns) vs
  in
  let merged =
    with_telemetry (fun () ->
        let d = Domain.spawn (fun () -> record values_b) in
        record values_a;
        Domain.join d;
        let s = Telemetry.snapshot () in
        Telemetry.hist_of s Telemetry.Hist.Eval_iteration_ns)
  in
  let concat =
    with_telemetry (fun () ->
        record values_a;
        record values_b;
        let s = Telemetry.snapshot () in
        Telemetry.hist_of s Telemetry.Hist.Eval_iteration_ns)
  in
  check_int "totals equal" concat.Telemetry.h_total merged.Telemetry.h_total;
  check_int "sums equal" concat.Telemetry.h_sum merged.Telemetry.h_sum;
  check_int "maxima equal" concat.Telemetry.h_max merged.Telemetry.h_max;
  check_bool "bucket arrays equal" true
    (merged.Telemetry.h_counts = concat.Telemetry.h_counts)

let test_hist_sampling_deterministic () =
  (* Btree_insert_ns is sampled 1-in-2^shift by a seeded per-shard stream:
     the same seed must select the same number of events, and the count
     must sit strictly between 0 and N *)
  let n = 20_000 in
  let run seed =
    Telemetry.set_hist_seed seed;
    with_telemetry (fun () ->
        for _ = 1 to n do
          let t0 = Telemetry.hist_start Telemetry.Hist.Btree_insert_ns in
          Telemetry.hist_end Telemetry.Hist.Btree_insert_ns t0
        done;
        let s = Telemetry.snapshot () in
        (Telemetry.hist_of s Telemetry.Hist.Btree_insert_ns).Telemetry.h_total)
  in
  let a = run 42 and b = run 42 and c = run 43 in
  check_int "same seed, same sample count" a b;
  check_bool "sampling actually thins" true (a > 0 && a < n);
  let shift = Telemetry.Hist.sample_shift Telemetry.Hist.Btree_insert_ns in
  check_bool "shift configured for btree inserts" true (shift > 0);
  let expect = n / (1 lsl shift) in
  check_bool "sample count near n / 2^shift" true
    (a > expect / 2 && a < expect * 2);
  (* different seed may coincide in count but the API must not fail *)
  check_bool "other seed also thins" true (c > 0 && c < n);
  Telemetry.set_hist_seed 0x7FB5D329

let test_hist_disabled_records_nothing () =
  Telemetry.disable ();
  Telemetry.reset ();
  check_int "hist_start disabled returns 0" 0
    (Telemetry.hist_start Telemetry.Hist.Olock_write_wait_ns);
  check_int "hist_time disabled returns 0" 0 (Telemetry.hist_time ());
  Telemetry.hist_record Telemetry.Hist.Pool_job_ns 123;
  let s = Telemetry.snapshot () in
  check_int "nothing recorded while disabled" 0
    (Telemetry.hist_of s Telemetry.Hist.Pool_job_ns).Telemetry.h_total

(* ------------------------------------------------------------------ *)
(* Exporters: v2 metrics JSON and Prometheus text format              *)
(* ------------------------------------------------------------------ *)

let test_histograms_json_parses_back () =
  with_telemetry (fun () ->
      for i = 1 to 100 do
        Telemetry.hist_record Telemetry.Hist.Eval_iteration_ns (i * 1_000)
      done;
      let s = Telemetry.snapshot () in
      let doc =
        Telemetry.Json.of_string
          (Telemetry.Json.to_string (Telemetry.histograms_json s))
      in
      let h =
        match Telemetry.Json.member "eval.iteration_ns" doc with
        | Some h -> h
        | None -> Alcotest.fail "eval.iteration_ns missing from JSON"
      in
      let int_member k =
        match Telemetry.Json.member k h with
        | Some (Telemetry.Json.Int v) -> v
        | _ -> Alcotest.fail (k ^ " missing or not an int")
      in
      check_int "count" 100 (int_member "count");
      check_int "sum" (5050 * 1_000) (int_member "sum_ns");
      check_int "max exact" 100_000 (int_member "max_ns");
      check_bool "quantiles ordered" true
        (int_member "p50_ns" <= int_member "p90_ns"
        && int_member "p90_ns" <= int_member "p99_ns"
        && int_member "p99_ns" <= int_member "max_ns");
      (* bucket triples [lo; hi; c] must sum back to count *)
      match Telemetry.Json.member "buckets" h with
      | Some (Telemetry.Json.List triples) ->
        let total =
          List.fold_left
            (fun acc t ->
              match t with
              | Telemetry.Json.List
                  [ Telemetry.Json.Int lo; Telemetry.Json.Int hi;
                    Telemetry.Json.Int c ] ->
                check_bool "bucket range sane" true (lo < hi && c > 0);
                acc + c
              | _ -> Alcotest.fail "bucket is not a [lo, hi, count] triple")
            0 triples
        in
        check_int "bucket counts sum to total" 100 total
      | _ -> Alcotest.fail "buckets missing or not a list")

(* Minimal Prometheus text-format reader for parse-back: returns
   (name, labels-fragment, value) per sample line. *)
let parse_prom text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         if line = "" || line.[0] = '#' then None
         else
           match String.rindex_opt line ' ' with
           | None -> None
           | Some i ->
             let key = String.sub line 0 i in
             let v = float_of_string (String.sub line (i + 1) (String.length line - i - 1)) in
             let name, labels =
               match String.index_opt key '{' with
               | Some j ->
                 ( String.sub key 0 j,
                   String.sub key j (String.length key - j) )
               | None -> (key, "")
             in
             Some (name, labels, v))

let prom_value samples name labels =
  match
    List.find_opt (fun (n, l, _) -> n = name && l = labels) samples
  with
  | Some (_, _, v) -> v
  | None -> Alcotest.fail (Printf.sprintf "sample %s%s missing" name labels)

let test_prometheus_parse_back () =
  with_telemetry (fun () ->
      for _ = 1 to 7 do
        Telemetry.bump Telemetry.Counter.Pool_jobs
      done;
      Telemetry.add Telemetry.Counter.Pool_busy_ns 2_500_000_000;
      for i = 1 to 64 do
        Telemetry.hist_record Telemetry.Hist.Pool_job_ns (i * 100)
      done;
      let s = Telemetry.snapshot () in
      let prom = Telemetry.Prom.create () in
      Telemetry.prometheus_of_snapshot prom s;
      Telemetry.Prom.gauge prom
        ~labels:[ ("relation", "path") ]
        "repro_btree_shape_height" 3.0;
      let text = Telemetry.Prom.to_string prom in
      let samples = parse_prom text in
      check_bool "counter exported" true
        (prom_value samples "repro_pool_jobs_total" "" = 7.0);
      check_bool "ns counter exported in seconds" true
        (Float.abs (prom_value samples "repro_pool_busy_seconds_total" "" -. 2.5)
        < 1e-9);
      check_bool "labelled gauge exported" true
        (prom_value samples "repro_btree_shape_height" "{relation=\"path\"}"
        = 3.0);
      check_bool "+Inf bucket equals count" true
        (prom_value samples "repro_pool_job_ns_bucket" "{le=\"+Inf\"}" = 64.0);
      check_bool "histogram count exported" true
        (prom_value samples "repro_pool_job_ns_count" "" = 64.0);
      check_bool "histogram sum exported" true
        (prom_value samples "repro_pool_job_ns_sum" ""
        = float_of_int (2080 * 100));
      (* cumulative buckets must be non-decreasing and end at the count *)
      let buckets =
        List.filter (fun (n, _, _) -> n = "repro_pool_job_ns_bucket") samples
      in
      check_bool "several bucket lines" true (List.length buckets >= 3);
      let last =
        List.fold_left
          (fun prev (_, _, v) ->
            check_bool "cumulative non-decreasing" true (v >= prev);
            v)
          0.0 buckets
      in
      check_bool "last cumulative equals count" true (last = 64.0);
      (* HELP/TYPE headers appear exactly once per family *)
      let header_lines =
        String.split_on_char '\n' text
        |> List.filter (fun l ->
               l = "# TYPE repro_pool_job_ns histogram")
      in
      check_int "one TYPE header per family" 1 (List.length header_lines))

(* Exposition-format completeness: every exported sample family must carry
   exactly one # HELP and one # TYPE line, including the flight-recorder
   heatmap counters (emitted here the same way datalog_cli's
   --prometheus path does). *)
let test_prometheus_help_type_complete () =
  with_telemetry (fun () ->
      Telemetry.bump Telemetry.Counter.Pool_jobs;
      Telemetry.add Telemetry.Counter.Pool_busy_ns 1_000_000;
      Telemetry.hist_record Telemetry.Hist.Btree_insert_ns 500;
      let s = Telemetry.snapshot () in
      let prom = Telemetry.Prom.create () in
      Telemetry.prometheus_of_snapshot prom s;
      (* heatmap families, as written by datalog_cli --prometheus *)
      Flight.enable ~capacity:64 ();
      Flight.record Flight.Ev.Validation_fail 1 2 0;
      Flight.record Flight.Ev.Upgrade_fail 0 1 0;
      Flight.record Flight.Ev.Restart 1 0 0;
      Flight.record Flight.Ev.Lock_wait 12_000 0 0;
      let heat = Tree_shape.heat_of_events (Flight.events ()) in
      Flight.disable ();
      List.iter
        (fun ((level, bucket), counts) ->
          Array.iteri
            (fun cls n ->
              if n > 0 then
                Telemetry.Prom.counter prom
                  ~help:"Flight-recorder contention events by node identity."
                  ~labels:
                    [
                      ("class", Tree_shape.heat_classes.(cls));
                      ("level", string_of_int level);
                      ("bucket", string_of_int bucket);
                    ]
                  "repro_contention_events_total" (float_of_int n))
            counts)
        heat.Tree_shape.heat_cells;
      Telemetry.Prom.counter prom ~help:"Flight-recorder root restarts."
        "repro_contention_restarts_total"
        (float_of_int heat.Tree_shape.heat_restarts);
      Telemetry.Prom.counter prom
        ~help:"Summed contended write-lock wait observed by the recorder."
        "repro_contention_lock_wait_seconds_total"
        (float_of_int heat.Tree_shape.heat_lock_wait_ns /. 1e9);
      let text = Telemetry.Prom.to_string prom in
      let lines = String.split_on_char '\n' text in
      let tagged tag =
        List.filter_map
          (fun l ->
            let prefix = "# " ^ tag ^ " " in
            if String.length l > String.length prefix
               && String.sub l 0 (String.length prefix) = prefix
            then
              let rest =
                String.sub l (String.length prefix)
                  (String.length l - String.length prefix)
              in
              match String.index_opt rest ' ' with
              | Some i -> Some (String.sub rest 0 i)
              | None -> Some rest
            else None)
          lines
      in
      let helps = tagged "HELP" and types = tagged "TYPE" in
      check_bool "HELP lines present" true (helps <> []);
      (* no family announced twice *)
      check_int "HELP families unique" (List.length helps)
        (List.length (List.sort_uniq compare helps));
      check_int "TYPE families unique" (List.length types)
        (List.length (List.sort_uniq compare types));
      check_bool "heatmap family typed" true
        (List.mem "repro_contention_events_total" types);
      check_bool "heatmap family helped" true
        (List.mem "repro_contention_events_total" helps);
      (* every sample belongs to a family that has both HELP and TYPE *)
      let strip name suffix =
        let nl = String.length name and sl = String.length suffix in
        if nl > sl && String.sub name (nl - sl) sl = suffix then
          Some (String.sub name 0 (nl - sl))
        else None
      in
      let family name =
        let base =
          List.find_map (strip name) [ "_bucket"; "_sum"; "_count" ]
        in
        match base with
        | Some b when List.mem b types -> b
        | _ -> name
      in
      List.iter
        (fun (name, _, _) ->
          let f = family name in
          check_bool (Printf.sprintf "family %s has TYPE" f) true
            (List.mem f types);
          check_bool (Printf.sprintf "family %s has HELP" f) true
            (List.mem f helps))
        (parse_prom text))

(* Exposition escaping with hostile strings: HELP text must escape
   backslash and newline (but not quotes); label values must escape
   backslash, newline, and the double quote.  Checked against the exact
   expected text, because %S-style OCaml escaping produces output that
   Prometheus parsers reject (e.g. \t, \ddd). *)
let test_prometheus_hostile_escaping () =
  let prom = Telemetry.Prom.create () in
  Telemetry.Prom.counter prom
    ~help:"win path C:\\tmp\nsecond \"quoted\" line"
    ~labels:[ ("file", "C:\\logs\n\"x\".txt") ]
    "repro_hostile_total" 1.0;
  let expected =
    "# HELP repro_hostile_total win path C:\\\\tmp\\nsecond \"quoted\" line\n"
    ^ "# TYPE repro_hostile_total counter\n"
    ^ "repro_hostile_total{file=\"C:\\\\logs\\n\\\"x\\\".txt\"} 1\n"
  in
  check_string "hostile HELP and label value escaped exactly" expected
    (Telemetry.Prom.to_string prom);
  (* the output must stay single-HELP-line: no raw newline anywhere inside
     a HELP line or a label value *)
  let lines = String.split_on_char '\n' (Telemetry.Prom.to_string prom) in
  check_int "exactly three lines plus trailing newline" 4 (List.length lines);
  (* benign strings pass through untouched *)
  let prom2 = Telemetry.Prom.create () in
  Telemetry.Prom.gauge prom2 ~help:"plain help."
    ~labels:[ ("k", "v") ]
    "repro_plain" 2.0;
  check_string "benign strings unchanged"
    ("# HELP repro_plain plain help.\n# TYPE repro_plain gauge\n"
   ^ "repro_plain{k=\"v\"} 2\n")
    (Telemetry.Prom.to_string prom2)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                    *)
(* ------------------------------------------------------------------ *)

let with_flight ?capacity f =
  Flight.enable ?capacity ();
  Fun.protect ~finally:(fun () -> Flight.disable ()) f

let test_flight_disabled_records_nothing () =
  Flight.enable ~capacity:64 ();
  Flight.disable ();
  for i = 1 to 50 do
    Flight.record Flight.Ev.Restart i 0 0
  done;
  check_int "no events while disabled" 0 (List.length (Flight.events ()));
  check_int "recorded_total stays zero" 0 (Flight.recorded_total ())

let test_flight_wraparound () =
  with_flight ~capacity:8 (fun () ->
      for i = 1 to 20 do
        Flight.record Flight.Ev.Restart i 0 0
      done;
      let evs = Flight.events () in
      check_int "ring keeps exactly capacity events" 8 (List.length evs);
      check_int "total counts overwritten events" 20
        (Flight.recorded_total ());
      (* survivors are the newest [capacity] events, oldest first *)
      List.iteri
        (fun i e ->
          check_int "survivor order" (13 + i) e.Flight.e_a1;
          check_bool "kind preserved" true
            (e.Flight.e_kind = Flight.Ev.Restart))
        evs)

let test_flight_multi_domain_writers () =
  with_flight ~capacity:1024 (fun () ->
      let per_worker = 100 in
      Pool.with_pool 4 (fun pool ->
          Pool.run pool (fun w ->
              for i = 1 to per_worker do
                Flight.record Flight.Ev.Restart (1000 + w) i 0
              done));
      let evs =
        List.filter
          (fun e ->
            e.Flight.e_kind = Flight.Ev.Restart && e.Flight.e_a1 >= 1000)
          (Flight.events ())
      in
      check_int "all workers' events survive" (4 * per_worker)
        (List.length evs);
      for w = 0 to 3 do
        let mine =
          List.filter (fun e -> e.Flight.e_a1 = 1000 + w) evs
        in
        check_int (Printf.sprintf "worker %d event count" w) per_worker
          (List.length mine);
        (* each worker's events all come from one domain's ring, in
           program order *)
        match mine with
        | [] -> ()
        | first :: _ ->
          check_bool "single ring per worker" true
            (List.for_all
               (fun e -> e.Flight.e_domain = first.Flight.e_domain)
               mine);
          ignore
            (List.fold_left
               (fun prev e ->
                 check_bool "per-domain order preserved" true
                   (e.Flight.e_a2 = prev + 1);
                 e.Flight.e_a2)
               0 mine)
      done;
      let domains =
        List.sort_uniq compare
          (List.map (fun e -> e.Flight.e_domain) evs)
      in
      check_int "four distinct writer domains" 4 (List.length domains))

let test_flight_dump_roundtrip () =
  with_flight ~capacity:32 (fun () ->
      Flight.record Flight.Ev.Validation_fail 2 5 0;
      Flight.record Flight.Ev.Fallback 16 0 0;
      Flight.record Flight.Ev.Phase Flight.phase_write_enter 0 0;
      let live = Flight.events () in
      (* in-memory round-trip *)
      let j = Flight.to_json ~reason:"unit test" ~seed:99 () in
      let d = Flight.dump_of_json j in
      check_string "reason survives" "unit test" d.Flight.d_reason;
      check_int "seed survives" 99 d.Flight.d_seed;
      check_int "capacity survives" 32 d.Flight.d_capacity;
      let reloaded = Flight.dump_events d in
      check_int "event count survives" (List.length live)
        (List.length reloaded);
      List.iter2
        (fun a b ->
          check_bool "kind survives" true (a.Flight.e_kind = b.Flight.e_kind);
          check_int "ts survives" a.Flight.e_ts b.Flight.e_ts;
          check_bool "args survive" true
            (Flight.event_args a = Flight.event_args b))
        live reloaded;
      (* file round-trip *)
      let path = Filename.temp_file "flight" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let written =
            Flight.write_crashdump ~path ~reason:"unit test" ~seed:99 ()
          in
          check_string "write returns the path" path written;
          let d2 = Flight.load path in
          check_int "file round-trip events" (List.length live)
            (List.length (Flight.dump_events d2)));
      (* a non-dump document must be rejected *)
      check_bool "non-dump rejected" true
        (try
           ignore (Flight.dump_of_json (Telemetry.Json.Obj []));
           false
         with Flight.Bad_dump _ -> true))

let () =
  Alcotest.run "telemetry"
    [
      ( "counters",
        [
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "single domain" `Quick test_single_domain_counts;
          Alcotest.test_case "multi-domain aggregation" `Quick
            test_multi_domain_aggregation;
          Alcotest.test_case "concurrent btree inserts" `Quick
            test_concurrent_btree_inserts_aggregate;
          Alcotest.test_case "reset" `Quick test_reset_clears;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_json_parser_rejects_garbage;
        ] );
      ( "trace",
        [
          Alcotest.test_case "export parses back" `Quick
            test_trace_export_parses_back;
          Alcotest.test_case "counters json" `Quick test_counters_json_shape;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "bucket boundaries" `Quick
            test_hist_bucket_boundaries;
          Alcotest.test_case "quantile monotonicity" `Quick
            test_hist_quantile_monotone;
          Alcotest.test_case "merge equals concat" `Quick
            test_hist_merge_equals_concat;
          Alcotest.test_case "deterministic sampling" `Quick
            test_hist_sampling_deterministic;
          Alcotest.test_case "disabled records nothing" `Quick
            test_hist_disabled_records_nothing;
        ] );
      ( "export",
        [
          Alcotest.test_case "histograms json parses back" `Quick
            test_histograms_json_parses_back;
          Alcotest.test_case "prometheus parses back" `Quick
            test_prometheus_parse_back;
          Alcotest.test_case "prometheus HELP/TYPE complete" `Quick
            test_prometheus_help_type_complete;
          Alcotest.test_case "prometheus hostile escaping" `Quick
            test_prometheus_hostile_escaping;
        ] );
      ( "flight",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_flight_disabled_records_nothing;
          Alcotest.test_case "wraparound at capacity" `Quick
            test_flight_wraparound;
          Alcotest.test_case "concurrent per-domain writers" `Quick
            test_flight_multi_domain_writers;
          Alcotest.test_case "dump/reload round-trip" `Quick
            test_flight_dump_roundtrip;
        ] );
    ]
