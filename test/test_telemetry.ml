(* Tests for the telemetry layer: domain-local counter aggregation, the
   hand-rolled JSON emitter/parser, and Chrome trace export.

   Telemetry state is global; every test resets and disables it on the way
   out so tests stay order-independent. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_telemetry ?tracing f =
  Telemetry.reset ();
  Telemetry.enable ?tracing ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_inert () =
  Telemetry.disable ();
  Telemetry.reset ();
  Telemetry.bump Telemetry.Counter.Btree_restarts;
  Telemetry.add Telemetry.Counter.Pool_busy_ns 1_000;
  let s = Telemetry.snapshot () in
  check_int "no counts recorded while disabled" 0
    (Telemetry.get s Telemetry.Counter.Btree_restarts);
  check_bool "no shards recorded" true (s.Telemetry.per_domain = [])

let test_single_domain_counts () =
  with_telemetry (fun () ->
      for _ = 1 to 42 do
        Telemetry.bump Telemetry.Counter.Olock_write_aborts
      done;
      Telemetry.add Telemetry.Counter.Eval_delta_tuples 1234;
      let s = Telemetry.snapshot () in
      check_int "bump counts exactly" 42
        (Telemetry.get s Telemetry.Counter.Olock_write_aborts);
      check_int "add counts exactly" 1234
        (Telemetry.get s Telemetry.Counter.Eval_delta_tuples);
      check_int "untouched counter stays zero" 0
        (Telemetry.get s Telemetry.Counter.Btree_leaf_splits))

let test_multi_domain_aggregation () =
  (* >= 4 domains each bump their own shard; the snapshot must sum them and
     report each domain separately. *)
  with_telemetry (fun () ->
      let domains = 4 and per_domain = 10_000 in
      let worker () =
        for _ = 1 to per_domain do
          Telemetry.bump Telemetry.Counter.Btree_restarts
        done
      in
      let spawned =
        List.init (domains - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      List.iter Domain.join spawned;
      let s = Telemetry.snapshot () in
      check_int "totals sum across domains" (domains * per_domain)
        (Telemetry.get s Telemetry.Counter.Btree_restarts);
      check_int "one shard per active domain" domains
        (List.length s.Telemetry.per_domain);
      let idx = Telemetry.Counter.index Telemetry.Counter.Btree_restarts in
      List.iter
        (fun (_, counts) ->
          check_int "each shard saw its own bumps" per_domain counts.(idx))
        s.Telemetry.per_domain)

let test_concurrent_btree_inserts_aggregate () =
  (* End-to-end: concurrent inserts into the specialized tuple tree must
     yield a consistent cardinality and strictly positive split counters
     (small capacity forces splits), aggregated across all inserting
     domains. *)
  with_telemetry (fun () ->
      let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] ~capacity:4 () in
      let domains = 4 and per_domain = 4_000 in
      let worker d () =
        for i = 0 to per_domain - 1 do
          let k = (d * per_domain) + i in
          ignore (Btree_tuples.insert t [| k; k lxor 5 |] : bool)
        done
      in
      let spawned =
        List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
      in
      worker 0 ();
      List.iter Domain.join spawned;
      check_int "all tuples present" (domains * per_domain)
        (Btree_tuples.cardinal t);
      Btree_tuples.check_invariants t;
      let s = Telemetry.snapshot () in
      let leaf = Telemetry.get s Telemetry.Counter.Btree_leaf_splits in
      let root = Telemetry.get s Telemetry.Counter.Btree_root_splits in
      check_bool "leaf splits observed" true (leaf > 0);
      check_bool "root splits observed" true (root > 0);
      (* a 16k-element capacity-4 tree needs at least n/4 leaf splits *)
      check_bool "split count plausible" true
        (leaf >= domains * per_domain / 8))

let test_reset_clears () =
  with_telemetry (fun () ->
      Telemetry.bump Telemetry.Counter.Pool_jobs;
      Telemetry.instant "marker";
      Telemetry.reset ();
      let s = Telemetry.snapshot () in
      check_int "counters cleared" 0
        (Telemetry.get s Telemetry.Counter.Pool_jobs);
      check_int "events cleared" 0 (Telemetry.event_count ()))

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let open Telemetry.Json in
  let doc =
    Obj
      [
        ("name", String "trace \"quoted\" \\ slash");
        ("count", Int (-42));
        ("rate", Float 0.5);
        ("flag", Bool true);
        ("nothing", Null);
        ("items", List [ Int 1; Int 2; Obj [ ("nested", Bool false) ] ]);
        ("empty_list", List []);
        ("empty_obj", Obj []);
      ]
  in
  let back = of_string (to_string doc) in
  check_bool "roundtrip preserves document" true (back = doc);
  check_string "escapes survive"
    "trace \"quoted\" \\ slash"
    (match member "name" back with Some (String s) -> s | _ -> "<missing>")

let test_json_parser_rejects_garbage () =
  let open Telemetry.Json in
  let rejects s =
    match of_string s with
    | exception Parse_error _ -> true
    | _ -> false
  in
  check_bool "bare garbage" true (rejects "nonsense");
  check_bool "unterminated string" true (rejects "\"abc");
  check_bool "trailing junk" true (rejects "{} extra");
  check_bool "unclosed object" true (rejects "{\"a\": 1")

(* ------------------------------------------------------------------ *)
(* Trace export                                                       *)
(* ------------------------------------------------------------------ *)

let read_file f = In_channel.with_open_bin f In_channel.input_all

let test_trace_export_parses_back () =
  with_telemetry ~tracing:true (fun () ->
      Telemetry.with_span ~cat:"test" "outer" (fun () ->
          Telemetry.with_span ~cat:"test" "inner" (fun () ->
              Telemetry.bump Telemetry.Counter.Btree_hint_hits);
          Telemetry.instant ~cat:"test" "tick");
      let file = Filename.temp_file "telemetry_test" ".trace.json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          Telemetry.export_trace ~process_name:"test proc" file;
          let doc = Telemetry.Json.of_string (read_file file) in
          let events =
            match Telemetry.Json.member "traceEvents" doc with
            | Some (Telemetry.Json.List l) -> l
            | _ -> Alcotest.fail "traceEvents missing or not a list"
          in
          check_bool "spans + instant + metadata present" true
            (List.length events >= 4);
          let names =
            List.filter_map
              (fun e ->
                match Telemetry.Json.member "name" e with
                | Some (Telemetry.Json.String s) -> Some s
                | _ -> None)
              events
          in
          List.iter
            (fun expected ->
              check_bool (expected ^ " event present") true
                (List.mem expected names))
            [ "outer"; "inner"; "tick"; "process_name" ];
          (* every event carries the mandatory Chrome trace fields *)
          List.iter
            (fun e ->
              match
                ( Telemetry.Json.member "ph" e,
                  Telemetry.Json.member "pid" e,
                  Telemetry.Json.member "ts" e )
              with
              | Some (Telemetry.Json.String _), Some _, Some _ -> ()
              | _ -> Alcotest.fail "event missing ph/pid/ts")
            events))

let test_counters_json_shape () =
  with_telemetry (fun () ->
      Telemetry.bump Telemetry.Counter.Btree_hint_hits;
      Telemetry.bump Telemetry.Counter.Btree_hint_misses;
      let s = Telemetry.snapshot () in
      let doc = Telemetry.counters_json s in
      (match Telemetry.Json.member "btree.hint_hits" doc with
      | Some (Telemetry.Json.Int 1) -> ()
      | _ -> Alcotest.fail "btree.hint_hits missing from counters JSON");
      match Telemetry.Json.member "btree.hint_hit_rate" doc with
      | Some (Telemetry.Json.Float r) ->
        check_bool "hit rate computed" true (Float.abs (r -. 0.5) < 1e-9)
      | _ -> Alcotest.fail "btree.hint_hit_rate missing");
  (* all-zero snapshot: rates defined, no NaN *)
  Telemetry.reset ();
  Telemetry.enable ();
  let s = Telemetry.snapshot () in
  check_bool "hint rate of empty snapshot is 0" true
    (Telemetry.hint_hit_rate s = 0.0);
  check_bool "imbalance of empty snapshot is finite" true
    (Float.is_finite (Telemetry.imbalance s));
  Telemetry.disable ();
  Telemetry.reset ()

let () =
  Alcotest.run "telemetry"
    [
      ( "counters",
        [
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "single domain" `Quick test_single_domain_counts;
          Alcotest.test_case "multi-domain aggregation" `Quick
            test_multi_domain_aggregation;
          Alcotest.test_case "concurrent btree inserts" `Quick
            test_concurrent_btree_inserts_aggregate;
          Alcotest.test_case "reset" `Quick test_reset_clears;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_json_parser_rejects_garbage;
        ] );
      ( "trace",
        [
          Alcotest.test_case "export parses back" `Quick
            test_trace_export_parses_back;
          Alcotest.test_case "counters json" `Quick test_counters_json_shape;
        ] );
    ]
