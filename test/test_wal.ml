(* WAL durability tests: record round-trips, torn-tail truncation (the
   benign crash signature), refusal on mid-log corruption (the
   non-benign one), snapshot+tail replay equivalence, the data-dir
   lockfile, and end-to-end server recovery — graceful stop, signal
   stop, and double-start refusal. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "test-wal-%d-%d" (Unix.getpid ()) !n)
    in
    let rec rm path =
      match Unix.lstat path with
      | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
      | _ -> ( try Sys.remove path with Sys_error _ -> ())
      | exception Unix.Unix_error _ -> ()
    in
    rm d;
    d

let open_ok ?segment_bytes ?compact_segments ?(durability = Wal.D_none) dir =
  match Wal.open_dir ?segment_bytes ?compact_segments ~durability dir with
  | Ok wr -> wr
  | Error m -> Alcotest.failf "open_dir %s: %s" dir m

let append_ok w e =
  match Wal.append w e with
  | Ok () -> ()
  | Error m -> Alcotest.failf "append: %s" m

(* Replay an entry list the way the server does, minus the engine:
   Anchor resets, Rules replaces, Facts accumulate (set semantics). *)
let fold_state entries =
  let prog = ref None in
  let facts = Hashtbl.create 64 in
  List.iter
    (function
      | Wal.Anchor _ ->
        prog := None;
        Hashtbl.reset facts
      | Wal.Rules p -> prog := Some p
      | Wal.Facts (rel, lines) ->
        List.iter (fun l -> Hashtbl.replace facts (rel, l) ()) lines
      | Wal.Commit _ -> ())
    entries;
  ( !prog,
    Hashtbl.to_seq_keys facts |> List.of_seq |> List.sort compare )

let seg_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".log")
  |> List.sort compare

(* --- pure log ------------------------------------------------------- *)

let test_durability_names () =
  List.iter
    (fun d ->
      match Wal.durability_of_string (Wal.durability_name d) with
      | Some d' -> checkb "durability round-trips" true (d = d')
      | None -> Alcotest.failf "%s did not parse" (Wal.durability_name d))
    [ Wal.D_none; Wal.D_async; Wal.D_batch; Wal.D_strict ];
  checkb "unknown mode rejected" true
    (Wal.durability_of_string "paranoid" = None)

let test_empty_dir () =
  let dir = fresh_dir () in
  let w, rv = open_ok dir in
  checki "fresh dir has no records" 0 rv.Wal.rv_records;
  checkb "no entries" true (rv.Wal.rv_entries = []);
  checkb "no torn tail" false rv.Wal.rv_torn_tail;
  checki "gen counter starts at 0" 0 rv.Wal.rv_committed_seq;
  Wal.close w;
  (* reopening the now-existing (magic-only) segment is still empty *)
  let w, rv = open_ok dir in
  checkb "still no entries" true (rv.Wal.rv_entries = []);
  checki "one live segment" 1 (Wal.segments w);
  Wal.close w

let sample_entries =
  [
    Wal.Rules ".decl kv(a:number, b:number)\n.input kv\n";
    Wal.Facts ("kv", [ "1 2"; "3 4" ]);
    Wal.Commit 1;
    Wal.Facts ("kv", [ "5 6" ]);
    Wal.Commit 2;
  ]

let test_roundtrip () =
  let dir = fresh_dir () in
  let w, _ = open_ok dir in
  List.iter (append_ok w) sample_entries;
  checki "records counted" (List.length sample_entries) (Wal.records w);
  Wal.close w;
  let w, rv = open_ok dir in
  Wal.close w;
  checkb "entries round-trip" true (rv.Wal.rv_entries = sample_entries);
  checki "records" (List.length sample_entries) rv.Wal.rv_records;
  checki "committed seq is last commit" 2 rv.Wal.rv_committed_seq;
  checkb "clean tail" false rv.Wal.rv_torn_tail

(* A crash mid-append leaves a prefix of a record; recovery must keep
   the valid prefix of the log, physically truncate the tail, and say
   so — never fail. *)
let test_torn_tail () =
  let dir = fresh_dir () in
  let w, _ = open_ok dir in
  List.iter (append_ok w) sample_entries;
  Wal.close w;
  let seg =
    match seg_files dir with
    | [ s ] -> Filename.concat dir s
    | l -> Alcotest.failf "expected one segment, got %d" (List.length l)
  in
  let size = (Unix.stat seg).Unix.st_size in
  (* cut one byte off the final record *)
  let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - 1);
  Unix.close fd;
  let w, rv = open_ok dir in
  Wal.close w;
  checkb "torn tail flagged" true rv.Wal.rv_torn_tail;
  checkb "valid prefix kept" true
    (rv.Wal.rv_entries
    = List.filteri (fun i _ -> i < List.length sample_entries - 1)
        sample_entries);
  (* the last record (9-byte header, payload "2" for [Commit 2]) is
     physically gone, not just skipped *)
  checki "file truncated to the valid prefix" (size - (9 + 1))
    (Unix.stat seg).Unix.st_size;
  (* after truncation the log is clean again and appendable *)
  let w, rv = open_ok dir in
  checkb "second recovery clean" false rv.Wal.rv_torn_tail;
  append_ok w (Wal.Commit 3);
  Wal.close w

(* Trailing garbage (a torn header) is equally truncated. *)
let test_trailing_garbage () =
  let dir = fresh_dir () in
  let w, _ = open_ok dir in
  List.iter (append_ok w) sample_entries;
  Wal.close w;
  let seg = Filename.concat dir (List.hd (seg_files dir)) in
  let fd = Unix.openfile seg [ Unix.O_WRONLY; Unix.O_APPEND ] 0 in
  ignore (Unix.write_substring fd "xyz" 0 3 : int);
  Unix.close fd;
  let w, rv = open_ok dir in
  Wal.close w;
  checkb "garbage tail flagged" true rv.Wal.rv_torn_tail;
  checkb "entries intact" true (rv.Wal.rv_entries = sample_entries)

(* A corrupt record in a non-final segment is not a crash signature;
   recovery must refuse with a structured error naming the segment and
   offset, and must not touch the files. *)
let test_corrupt_mid_log_refused () =
  let dir = fresh_dir () in
  (* smallest allowed segments (4 KiB floor) + fat records force
     rotation: several segments on disk *)
  let w, _ = open_ok ~segment_bytes:1 dir in
  for i = 1 to 16 do
    append_ok w
      (Wal.Facts ("kv", [ Printf.sprintf "%d %s" i (String.make 500 'x') ]))
  done;
  Wal.close w;
  let segs = seg_files dir in
  checkb "multiple segments" true (List.length segs > 1);
  let first = Filename.concat dir (List.hd segs) in
  (* flip one payload byte past the magic and record header *)
  let off = 8 + 9 + 2 in
  let fd = Unix.openfile first [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET : int);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1 : int);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
  ignore (Unix.lseek fd off Unix.SEEK_SET : int);
  ignore (Unix.write fd b 0 1 : int);
  Unix.close fd;
  (match Wal.open_dir ~durability:Wal.D_none dir with
  | Ok (w, _) ->
    Wal.close w;
    Alcotest.fail "corrupt non-final segment did not refuse"
  | Error m ->
    checkb "error names the segment" true
      (let rec contains i =
         i + String.length (List.hd segs) <= String.length m
         && (String.sub m i (String.length (List.hd segs)) = List.hd segs
            || contains (i + 1))
       in
       contains 0);
    checkb "error says non-final" true
      (let rec contains i =
         i + 9 <= String.length m
         && (String.sub m i 9 = "non-final" || contains (i + 1))
       in
       contains 0));
  (* flip the byte back: the log must recover fully — refusal was
     non-destructive *)
  let fd = Unix.openfile first [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET : int);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
  ignore (Unix.write fd b 0 1 : int);
  Unix.close fd;
  let w, rv = open_ok dir in
  Wal.close w;
  checki "all records back after repair" 16 rv.Wal.rv_records

(* Same refusal driven through the chaos point: wal.recover.corrupt
   flips bytes as records are read back, so a multi-segment log fails
   recovery with the structured error — and, the chaos being read-side
   only, a quiet reopen gets everything. *)
let test_chaos_recover_corrupt () =
  let dir = fresh_dir () in
  let w, _ = open_ok ~segment_bytes:1 dir in
  for i = 1 to 16 do
    append_ok w
      (Wal.Facts ("kv", [ Printf.sprintf "%d %s" i (String.make 500 'y') ]))
  done;
  Wal.close w;
  Fun.protect ~finally:Chaos.disable @@ fun () ->
  (match Chaos.apply_spec "seed=7,points=wal.recover.corrupt:1" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "chaos spec: %s" m);
  (match Wal.open_dir ~durability:Wal.D_none dir with
  | Ok (w, _) ->
    Wal.close w;
    Alcotest.fail "chaos-corrupted recovery did not refuse"
  | Error _ -> ());
  Chaos.disable ();
  let w, rv = open_ok dir in
  Wal.close w;
  checki "quiet reopen recovers all" 16 rv.Wal.rv_records

(* Compaction rewrites the log as anchor+snapshot; replaying the
   compacted log plus its tail must reach exactly the state of
   replaying the full history. *)
let test_snapshot_tail_equivalence () =
  let dir = fresh_dir () in
  let prog = ".decl kv(a:number, b:number)\n.input kv\n" in
  let w, _ = open_ok dir in
  let history = ref [] in
  let app e =
    append_ok w e;
    history := e :: !history
  in
  app (Wal.Rules prog);
  app (Wal.Facts ("kv", [ "1 1"; "2 2" ]));
  app (Wal.Commit 1);
  app (Wal.Facts ("kv", [ "3 3" ]));
  app (Wal.Commit 2);
  (* snapshot the state as of seq 2, then keep appending a tail *)
  (match Wal.compact w ~program:prog ~seq:2 [ ("kv", [ "1 1"; "2 2"; "3 3" ]) ]
   with
  | Ok () -> ()
  | Error m -> Alcotest.failf "compact: %s" m);
  checki "compaction left one segment" 1 (Wal.segments w);
  app (Wal.Facts ("kv", [ "4 4" ]));
  app (Wal.Commit 3);
  Wal.close w;
  let w, rv = open_ok dir in
  Wal.close w;
  (match rv.Wal.rv_entries with
  | Wal.Anchor 2 :: _ -> ()
  | _ -> Alcotest.fail "compacted log does not start with its anchor");
  checkb "snapshot+tail replay equals full replay" true
    (fold_state rv.Wal.rv_entries = fold_state (List.rev !history));
  checki "gen counter resumes past the tail" 3 rv.Wal.rv_committed_seq

(* Under strict durability a record whose fsync failed must not survive
   in the log: the server refuses the admission on the error, so a
   recovery replaying the record would diverge from acked state.  The
   failed append is cut back off and the log stays clean and
   appendable. *)
let test_strict_fsync_fail_rollback () =
  let dir = fresh_dir () in
  let w, _ = open_ok ~durability:Wal.D_strict dir in
  let prog = ".decl kv(a:number, b:number)\n.input kv\n" in
  append_ok w (Wal.Rules prog);
  Fun.protect ~finally:Chaos.disable (fun () ->
      (match Chaos.apply_spec "seed=3,points=wal.fsync.fail:1" with
      | Ok () -> ()
      | Error m -> Alcotest.failf "chaos spec: %s" m);
      match Wal.append w (Wal.Facts ("kv", [ "9 9" ])) with
      | Ok () -> Alcotest.fail "append under failing fsync did not error"
      | Error _ -> ());
  checkb "log not torn" false (Wal.torn w);
  checki "refused record not counted" 1 (Wal.records w);
  append_ok w (Wal.Facts ("kv", [ "1 1" ]));
  Wal.close w;
  let w, rv = open_ok dir in
  Wal.close w;
  checkb "clean recovery" false rv.Wal.rv_torn_tail;
  checkb "refused record absent, later append present" true
    (rv.Wal.rv_entries = [ Wal.Rules prog; Wal.Facts ("kv", [ "1 1" ]) ])

let test_lockfile () =
  let dir = fresh_dir () in
  let w, _ = open_ok dir in
  (match Wal.open_dir ~durability:Wal.D_none dir with
  | Ok (w2, _) ->
    Wal.close w2;
    Wal.close w;
    Alcotest.fail "second open_dir on a held dir succeeded"
  | Error m ->
    checkb "lock error mentions the lock" true
      (let rec contains i =
         i + 4 <= String.length m
         && (String.sub m i 4 = "lock" || contains (i + 1))
       in
       contains 0));
  Wal.close w;
  let w, _ = open_ok dir in
  Wal.close w

(* --- server recovery ------------------------------------------------ *)

let fresh_addr =
  let n = ref 0 in
  fun () ->
    incr n;
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "test-wal-srv-%d-%d.sock" (Unix.getpid ()) !n)
    in
    (try Sys.remove path with Sys_error _ -> ());
    match Telemetry_server.parse_addr ("unix:" ^ path) with
    | Ok a -> a
    | Error m -> Alcotest.failf "bad addr: %s" m

let durable_cfg ?(durability = Wal.D_strict) dir addr =
  {
    (Dl_server.default_config addr) with
    Dl_server.workers = 2;
    flip_pending = 32;
    flip_interval_ms = 5;
    data_dir = Some dir;
    durability;
  }

let with_client addr k =
  match Dl_client.connect addr with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok c -> Fun.protect ~finally:(fun () -> Dl_client.close c) (fun () -> k c)

let program =
  ".decl kv(a:number, b:number)\n.input kv\n\
   .decl out(a:number, b:number)\n.output out\n\
   out(x, y) :- kv(x, y).\n"

let install c =
  match Dl_client.rules c program with
  | Ok (Dl_client.Ok_ _) -> ()
  | Ok (Dl_client.Err (code, m)) -> Alcotest.failf "RULES: %s %s" code m
  | Ok _ | Error _ -> Alcotest.failf "RULES: bad reply"

let assert_kv c a b =
  match Dl_client.assert_fact c "kv" [ string_of_int a; string_of_int b ] with
  | Ok (Dl_client.Ok_ _) -> ()
  | Ok (Dl_client.Err (code, m)) -> Alcotest.failf "ASSERT: %s %s" code m
  | Ok _ | Error _ -> Alcotest.failf "ASSERT: bad reply"

let query_all c =
  match Dl_client.query c "out" [ "_"; "_" ] with
  | Ok (Dl_client.Data (_, rows)) -> List.sort compare rows
  | Ok (Dl_client.Err (code, m)) -> Alcotest.failf "QUERY: %s %s" code m
  | Ok _ | Error _ -> Alcotest.failf "QUERY: bad reply"

let stats_field c name =
  match Dl_client.stats c with
  | Ok (Dl_client.Data (_, lines)) ->
    List.find_map
      (fun l ->
        match String.index_opt l '=' with
        | Some eq when String.sub l 0 eq = name ->
          Some (String.sub l (eq + 1) (String.length l - eq - 1))
        | _ -> None)
      lines
  | _ -> Alcotest.fail "STATS: bad reply"

(* Strict durability: stop the server (no clean shutdown ordering is
   assumed beyond the WAL contract) and a fresh server on the same dir
   must serve the program and every acked fact. *)
let test_server_recovers () =
  let dir = fresh_dir () in
  let before =
    let addr = fresh_addr () in
    match Dl_server.start (durable_cfg dir addr) with
    | Error m -> Alcotest.failf "server start: %s" m
    | Ok srv ->
      Fun.protect ~finally:(fun () -> Dl_server.stop srv) @@ fun () ->
      with_client addr @@ fun c ->
      install c;
      for i = 1 to 20 do
        assert_kv c i (i * 10)
      done;
      let rows = query_all c in
      (match stats_field c "durability" with
      | Some "strict" -> ()
      | v ->
        Alcotest.failf "durability=%s in STATS"
          (Option.value v ~default:"<missing>"));
      rows
  in
  checki "acked rows served before crash" 20 (List.length before);
  let addr = fresh_addr () in
  match Dl_server.start (durable_cfg dir addr) with
  | Error m -> Alcotest.failf "recovery start: %s" m
  | Ok srv ->
    Fun.protect ~finally:(fun () -> Dl_server.stop srv) @@ fun () ->
    with_client addr @@ fun c ->
    let after = query_all c in
    checkb "recovered state byte-identical" true (after = before);
    (match stats_field c "recovered_records" with
    | Some v when int_of_string v > 0 -> ()
    | v ->
      Alcotest.failf "recovered_records=%s"
        (Option.value v ~default:"<missing>"));
    (* the recovered server is live: new ingest lands on top *)
    assert_kv c 999 999;
    checki "ingest on recovered state" 21 (List.length (query_all c))

(* The SIGTERM path: datalog_serve's handler calls signal_stop, which
   drains and closes (flushing) the WAL — a mid-session termination must
   leave a log that recovers every acked fact. *)
let test_signal_stop_recoverable () =
  let dir = fresh_dir () in
  let addr = fresh_addr () in
  (match Dl_server.start (durable_cfg ~durability:Wal.D_batch dir addr) with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok srv ->
    (with_client addr @@ fun c ->
     install c;
     for i = 1 to 10 do
       assert_kv c i i
     done;
     (* leave ingest unflipped on purpose: the close-time flush must
        still cover it *)
     ());
    Dl_server.signal_stop srv;
    Dl_server.wait srv);
  let addr = fresh_addr () in
  match Dl_server.start (durable_cfg dir addr) with
  | Error m -> Alcotest.failf "recovery start: %s" m
  | Ok srv ->
    Fun.protect ~finally:(fun () -> Dl_server.stop srv) @@ fun () ->
    with_client addr @@ fun c ->
    checki "all acked facts recovered" 10 (List.length (query_all c))

let test_double_start_refused () =
  let dir = fresh_dir () in
  let addr = fresh_addr () in
  match Dl_server.start (durable_cfg dir addr) with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok srv ->
    Fun.protect ~finally:(fun () -> Dl_server.stop srv) @@ fun () ->
    (match Dl_server.start (durable_cfg dir (fresh_addr ())) with
    | Ok srv2 ->
      Dl_server.stop srv2;
      Alcotest.fail "second server took an owned data dir"
    | Error m ->
      checkb "refusal mentions the lock" true
        (let rec contains i =
           i + 4 <= String.length m
           && (String.sub m i 4 = "lock" || contains (i + 1))
         in
         contains 0));
    (* the refused start must not have broken the owner *)
    with_client addr @@ fun c ->
    install c;
    assert_kv c 1 2;
    checki "owner still serving" 1 (List.length (query_all c))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "wal"
    [
      ( "log",
        [
          tc "durability names" `Quick test_durability_names;
          tc "empty dir" `Quick test_empty_dir;
          tc "record round-trip" `Quick test_roundtrip;
          tc "torn tail truncated" `Quick test_torn_tail;
          tc "trailing garbage truncated" `Quick test_trailing_garbage;
          tc "corrupt mid-log refused" `Quick test_corrupt_mid_log_refused;
          tc "chaos recover corrupt" `Quick test_chaos_recover_corrupt;
          tc "snapshot+tail equivalence" `Quick
            test_snapshot_tail_equivalence;
          tc "strict fsync failure rolled back" `Quick
            test_strict_fsync_fail_rollback;
          tc "lockfile" `Quick test_lockfile;
        ] );
      ( "recovery",
        [
          tc "server recovers acked state" `Quick test_server_recovers;
          tc "signal stop leaves recoverable log" `Quick
            test_signal_stop_recoverable;
          tc "double start refused" `Quick test_double_start_refused;
        ] );
    ]
