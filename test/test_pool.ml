(* Tests for the domain pool. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_size_one_runs_inline () =
  Pool.with_pool 1 (fun p ->
      check_int "size" 1 (Pool.size p);
      let ran = ref false in
      Pool.run p (fun w ->
          check_int "worker id" 0 w;
          ran := true);
      check_bool "ran" true !ran)

let test_run_covers_all_workers () =
  Pool.with_pool 4 (fun p ->
      let seen = Array.make 4 0 in
      Pool.run p (fun w -> seen.(w) <- seen.(w) + 1);
      Array.iteri (fun i c -> check_int (Printf.sprintf "worker %d ran once" i) 1 c) seen)

let test_run_reusable () =
  Pool.with_pool 3 (fun p ->
      let counter = Atomic.make 0 in
      for _ = 1 to 50 do
        Pool.run p (fun _ -> Atomic.incr counter)
      done;
      check_int "all jobs ran" (3 * 50) (Atomic.get counter))

let test_parallel_for_full_coverage () =
  Pool.with_pool 4 (fun p ->
      let n = 10_000 in
      let hit = Array.make n 0 in
      Pool.parallel_for p 0 n (fun i -> hit.(i) <- hit.(i) + 1);
      let bad = ref 0 in
      Array.iter (fun c -> if c <> 1 then incr bad) hit;
      check_int "every index exactly once" 0 !bad)

let test_parallel_for_empty_range () =
  Pool.with_pool 2 (fun p ->
      let ran = ref false in
      Pool.parallel_for p 5 5 (fun _ -> ran := true);
      Pool.parallel_for p 5 3 (fun _ -> ran := true);
      check_bool "no iteration on empty range" false !ran)

let test_parallel_for_chunk1 () =
  Pool.with_pool 3 (fun p ->
      let n = 101 in
      let sum = Atomic.make 0 in
      Pool.parallel_for p ~chunk:1 0 n (fun i -> ignore (Atomic.fetch_and_add sum i));
      check_int "sum" (n * (n - 1) / 2) (Atomic.get sum))

let test_parallel_for_workers_coverage () =
  Pool.with_pool 4 (fun p ->
      let n = 5_000 in
      let owner = Array.make n (-1) in
      Pool.parallel_for_workers p ~chunk:7 0 n (fun w i ->
          if owner.(i) <> -1 then Alcotest.failf "index %d ran twice" i;
          owner.(i) <- w);
      Array.iteri
        (fun i w ->
          if w < 0 || w >= 4 then Alcotest.failf "index %d: bad worker %d" i w)
        owner;
      (* a worker id must stay pinned to one domain for the whole loop, so
         per-worker state (e.g. hint records) is never shared *)
      let doms = Array.make 4 None in
      Pool.parallel_for_workers p ~chunk:1 0 1_000 (fun w _ ->
          let d = (Domain.self () :> int) in
          match doms.(w) with
          | None -> doms.(w) <- Some d
          | Some d' ->
            if d' <> d then Alcotest.failf "worker %d moved domains" w))

let test_parallel_for_ranges_partition () =
  Pool.with_pool 4 (fun p ->
      let n = 1003 in
      let hit = Array.make n 0 in
      Pool.parallel_for_ranges p 0 n (fun _w lo hi ->
          for i = lo to hi - 1 do
            hit.(i) <- hit.(i) + 1
          done);
      let bad = ref 0 in
      Array.iter (fun c -> if c <> 1 then incr bad) hit;
      check_int "contiguous partition covers exactly once" 0 !bad)

let test_parallel_reduce_sum () =
  Pool.with_pool 4 (fun p ->
      let n = 100_000 in
      let s =
        Pool.parallel_reduce p 0 n
          ~init:(fun () -> 0)
          ~body:(fun acc i -> acc + i)
          ~combine:( + )
      in
      check_int "reduction sum" (n * (n - 1) / 2) s)

let test_parallel_reduce_empty () =
  Pool.with_pool 2 (fun p ->
      let s =
        Pool.parallel_reduce p 3 3
          ~init:(fun () -> 7)
          ~body:(fun acc _ -> acc + 1)
          ~combine:( + )
      in
      check_int "empty reduce yields init" 7 s)

let test_reduce_order_preserved () =
  (* combine must be applied in worker order so non-commutative merges
     (e.g. list concatenation of sorted runs) work *)
  Pool.with_pool 4 (fun p ->
      let n = 1000 in
      let l =
        Pool.parallel_reduce p 0 n
          ~init:(fun () -> [])
          ~body:(fun acc i -> i :: acc)
          ~combine:(fun a b -> b @ a)
      in
      let l = List.rev l in
      check_bool "concatenated in index order" true (l = List.init n Fun.id))

let test_exception_propagates () =
  Pool.with_pool 4 (fun p ->
      let raised =
        try
          Pool.run p (fun w -> if w = 2 then failwith "boom");
          false
        with Pool.Pool_failure [ { Pool.f_worker = 2; f_exn; _ } ] -> (
          match f_exn with Failure m -> m = "boom" | _ -> false)
      in
      check_bool "failure aggregated to caller" true raised;
      (* pool must still be usable afterwards *)
      let c = Atomic.make 0 in
      Pool.run p (fun _ -> Atomic.incr c);
      check_int "pool alive after exception" 4 (Atomic.get c))

let test_multi_failure_aggregated () =
  Pool.with_pool 4 (fun p ->
      let workers =
        try
          Pool.run p (fun w -> if w <> 0 then failwith "multi");
          []
        with Pool.Pool_failure fs -> List.map (fun f -> f.Pool.f_worker) fs
      in
      check_bool "all failing workers reported, sorted" true
        (workers = [ 1; 2; 3 ]);
      (* surviving workers still drained: next job sees all four *)
      let c = Atomic.make 0 in
      Pool.run p (fun _ -> Atomic.incr c);
      check_int "pool alive after multi-failure" 4 (Atomic.get c))

let test_shutdown_idempotent () =
  let p = Pool.create 3 in
  Pool.shutdown p;
  Pool.shutdown p;
  check_bool "double shutdown ok" true true

let test_nested_data_parallelism () =
  (* workers of one pool hammer a shared atomic; ensures no job interleaving
     corruption across many generations *)
  Pool.with_pool 4 (fun p ->
      let total = Atomic.make 0 in
      for _ = 1 to 20 do
        Pool.parallel_for p 0 1000 (fun _ -> Atomic.incr total)
      done;
      check_int "20 rounds of 1000" 20_000 (Atomic.get total))

let () =
  Alcotest.run "pool"
    [
      ( "basics",
        [
          Alcotest.test_case "size 1 inline" `Quick test_size_one_runs_inline;
          Alcotest.test_case "run covers workers" `Quick test_run_covers_all_workers;
          Alcotest.test_case "run reusable" `Quick test_run_reusable;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        ] );
      ( "parallel_for",
        [
          Alcotest.test_case "full coverage" `Quick test_parallel_for_full_coverage;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty_range;
          Alcotest.test_case "chunk 1" `Quick test_parallel_for_chunk1;
          Alcotest.test_case "worker ids" `Quick
            test_parallel_for_workers_coverage;
          Alcotest.test_case "static ranges" `Quick test_parallel_for_ranges_partition;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "sum" `Quick test_parallel_reduce_sum;
          Alcotest.test_case "empty" `Quick test_parallel_reduce_empty;
          Alcotest.test_case "order preserved" `Quick test_reduce_order_preserved;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "multi-failure aggregated" `Quick
            test_multi_failure_aggregated;
          Alcotest.test_case "many generations" `Quick test_nested_data_parallelism;
        ] );
    ]
