(* Query-server tests: protocol totality (parse_request/parse_fact must
   survive arbitrary bytes), render/parse round-trips, the closed error-code
   set, hostile input over a live socket (structured ERR, never a dropped
   connection), and — the load-bearing one — four client domains mixing
   ASSERT and QUERY against one resident server, audited for exact
   cardinality and zero phase violations. *)

module P = Dl_proto

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- pure protocol ------------------------------------------------- *)

let test_parse_verbs () =
  (match P.parse_request "HELLO dlserve/1" with
  | Ok (P.Hello v) -> check Alcotest.string "hello token" P.version v
  | _ -> Alcotest.fail "HELLO did not parse");
  (match P.parse_request "rules 3" with
  | Ok (P.Rules 3) -> ()
  | _ -> Alcotest.fail "lowercase RULES did not parse");
  (match P.parse_request "Load\tedge  2" with
  | Ok (P.Load ("edge", 2)) -> ()
  | _ -> Alcotest.fail "LOAD with mixed whitespace did not parse");
  (match P.parse_request "ASSERT kv 1 -2" with
  | Ok (P.Assert_ ("kv", [| P.V_int 1; P.V_int (-2) |])) -> ()
  | _ -> Alcotest.fail "ASSERT fields did not parse");
  (match P.parse_request "assert kv(1, foo)" with
  | Ok (P.Assert_ ("kv", [| P.V_int 1; P.V_sym "foo" |])) -> ()
  | _ -> Alcotest.fail "ASSERT atom sugar did not parse");
  (match P.parse_request "QUERY out(_, 7)" with
  | Ok (P.Query ("out", [| P.P_any; P.P_val (P.V_int 7) |])) -> ()
  | _ -> Alcotest.fail "QUERY atom sugar / wildcard did not parse");
  (match P.parse_request "query out _ sym" with
  | Ok (P.Query ("out", [| P.P_any; P.P_val (P.V_sym "sym") |])) -> ()
  | _ -> Alcotest.fail "QUERY flat form did not parse");
  List.iter
    (fun (line, want) ->
      match (P.parse_request line, want) with
      | Ok P.Stats, `Stats | Ok P.Ping, `Ping | Ok P.Shutdown, `Shutdown -> ()
      | _ -> Alcotest.failf "%S did not parse to its verb" line)
    [ ("STATS", `Stats); ("pInG", `Ping); ("shutdown", `Shutdown) ]

let test_parse_errors () =
  let bad line =
    match P.parse_request line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%S parsed but should not" line
  in
  bad "";
  bad "   ";
  bad "FROBNICATE 1 2";
  bad "RULES";
  bad "RULES many";
  bad "RULES -1";
  bad (Printf.sprintf "RULES %d" (P.max_batch + 1));
  bad "LOAD edge";
  bad "ASSERT";
  bad "QUERY";
  (* unterminated atom syntax *)
  bad "ASSERT kv(1, 2";
  (* an atom-form field with interior whitespace cannot round-trip
     through whitespace-tokenised fact lines (the WAL's on-disk form) *)
  bad "ASSERT kv(1, b c)";
  bad "QUERY kv(a b, _)";
  (match P.parse_fact "1 2 xyz" with
  | Ok [| P.V_int 1; P.V_int 2; P.V_sym "xyz" |] -> ()
  | _ -> Alcotest.fail "fact line did not parse");
  (match P.parse_fact "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty fact line parsed")

(* Deterministic byte-string fuzz: totality means no exception, ever. *)
let test_parse_total_fuzz () =
  let st = ref 0x2545F4914F6CDD1D in
  let next () =
    let x = !st in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    st := x;
    x land max_int
  in
  for _ = 1 to 5_000 do
    let len = next () mod 120 in
    let s =
      String.init len (fun _ ->
          (* full byte range, including NUL and control characters *)
          Char.chr (next () mod 256))
    in
    (match P.parse_request s with Ok _ | Error _ -> ());
    match P.parse_fact s with Ok _ | Error _ -> ()
  done;
  (* structured garbage that nearly parses *)
  List.iter
    (fun s -> match P.parse_request s with Ok _ | Error _ -> ())
    [
      "ASSERT kv(((((";
      "QUERY x(,,,,)";
      "LOAD " ^ String.make 100 'x' ^ " 99999999999999999999";
      "ASSERT kv " ^ String.concat " " (List.init 200 string_of_int);
      String.make 300 '(';
    ]

let test_response_roundtrip () =
  let render r =
    let b = Buffer.create 64 in
    P.render b r;
    Buffer.contents b
  in
  (match String.split_on_char '\n' (render (P.R_ok "hi there")) with
  | line :: _ -> (
    match P.parse_response_line line with
    | `Ok "hi there" -> ()
    | _ -> Alcotest.fail "OK did not round-trip")
  | [] -> Alcotest.fail "render produced nothing");
  (match
     String.split_on_char '\n' (render (P.R_data ("2 rows", [ "a\tb"; "c\td" ])))
   with
  | status :: rest -> (
    (match P.parse_response_line status with
    | `Data (2, "2 rows") -> ()
    | _ -> Alcotest.fail "DATA status did not round-trip");
    (* payload lines then END, then the trailing-newline split remainder *)
    match rest with
    | [ "a\tb"; "c\td"; "END"; "" ] -> ()
    | _ -> Alcotest.fail "DATA payload framing wrong")
  | [] -> Alcotest.fail "render produced nothing");
  (match
     String.split_on_char '\n' (render (P.R_err (P.E_busy, "try later")))
   with
  | line :: _ -> (
    match P.parse_response_line line with
    | `Err ("busy", "try later") -> ()
    | _ -> Alcotest.fail "ERR did not round-trip")
  | [] -> Alcotest.fail "render produced nothing");
  match P.parse_response_line "?? mystery line" with
  | `Err ("garbled", _) -> ()
  | _ -> Alcotest.fail "garbled line not classified as garbled"

let test_err_codes () =
  let all =
    [
      P.E_parse; P.E_proto; P.E_program; P.E_no_program; P.E_relation;
      P.E_arity; P.E_busy; P.E_shutdown; P.E_internal;
    ]
  in
  let names = List.map P.err_name all in
  (* names are distinct and round-trip through err_of_name *)
  checki "distinct names" (List.length all)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun c ->
      match P.err_of_name (P.err_name c) with
      | Some c' -> checkb "code round-trips" true (c = c')
      | None -> Alcotest.failf "err_of_name %S = None" (P.err_name c))
    all;
  checkb "unknown name rejected" true (P.err_of_name "no-such-code" = None)

(* --- live server ---------------------------------------------------- *)

let fresh_addr =
  let n = ref 0 in
  fun () ->
    incr n;
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "test-dlserve-%d-%d.sock" (Unix.getpid ()) !n)
    in
    (try Sys.remove path with Sys_error _ -> ());
    match Telemetry_server.parse_addr ("unix:" ^ path) with
    | Ok a -> a
    | Error m -> Alcotest.failf "bad addr: %s" m

let with_server ?(workers = 2) ?(flip_pending = 32) ?(flip_interval_ms = 5) ()
    k =
  let addr = fresh_addr () in
  let cfg =
    {
      (Dl_server.default_config addr) with
      Dl_server.workers;
      flip_pending;
      flip_interval_ms;
      check_phases = true;
    }
  in
  match Dl_server.start cfg with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok srv ->
    Fun.protect ~finally:(fun () -> Dl_server.stop srv) (fun () -> k addr)

let with_client addr k =
  match Dl_client.connect addr with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok c -> Fun.protect ~finally:(fun () -> Dl_client.close c) (fun () -> k c)

let program =
  ".decl kv(a:number, b:number)\n.input kv\n\
   .decl out(a:number, b:number)\n.output out\n\
   out(x, y) :- kv(x, y).\n"

let install c =
  match Dl_client.rules c program with
  | Ok (Dl_client.Ok_ _) -> ()
  | Ok (Dl_client.Err (code, m)) -> Alcotest.failf "RULES: %s %s" code m
  | Ok _ | Error _ -> Alcotest.failf "RULES: bad reply"

(* Every hostile line gets a structured ERR on the expected code and the
   connection stays usable: PING must still answer afterwards. *)
let test_hostile_lines () =
  with_server () @@ fun addr ->
  with_client addr @@ fun c ->
  let expect_err line code =
    (match Dl_client.request c line with
    | Ok (Dl_client.Err (got, _)) ->
      check Alcotest.string (Printf.sprintf "code for %S" line) code got
    | Ok _ -> Alcotest.failf "%S did not produce ERR" line
    | Error m -> Alcotest.failf "%S killed the connection: %s" line m);
    match Dl_client.ping c with
    | Ok (Dl_client.Ok_ _) -> ()
    | _ -> Alcotest.failf "connection dead after %S" line
  in
  expect_err "FROBNICATE 1 2" "parse";
  expect_err "" "parse";
  expect_err "\000\001\255garbage\127" "parse";
  expect_err "QUERY out(_, _)" "no-program";
  expect_err "ASSERT kv 1 2" "no-program";
  expect_err (Printf.sprintf "RULES %d" (P.max_batch + 1)) "parse";
  install c;
  expect_err "ASSERT nosuch 1 2" "relation";
  expect_err "QUERY nosuch(_)" "relation";
  expect_err "ASSERT kv 1" "arity";
  expect_err "QUERY kv(_, _, _)" "arity";
  (* a broken program must not dislodge the installed one *)
  (match Dl_client.rules c ":- broken(" with
  | Ok (Dl_client.Err ("program", _)) -> ()
  | _ -> Alcotest.fail "broken program not rejected as program error");
  match Dl_client.assert_fact c "kv" [ "1"; "2" ] with
  | Ok (Dl_client.Ok_ _) -> ()
  | _ -> Alcotest.fail "previous program lost after rejected RULES"

(* An oversized request line gets a structured ERR proto and then — since
   resynchronising inside an unbounded stream is not attempted — a
   deliberate close; the server itself must stay up. *)
let test_oversized_line () =
  with_server () @@ fun addr ->
  (with_client addr @@ fun c ->
   match Dl_client.request c ("PING " ^ String.make (P.max_line + 64) 'x') with
   | Ok (Dl_client.Err ("proto", _)) -> ()
   | Ok _ -> Alcotest.fail "oversized line did not produce ERR proto"
   | Error m -> Alcotest.failf "no structured reply before close: %s" m);
  (* fresh connections still served *)
  with_client addr @@ fun c ->
  match Dl_client.ping c with
  | Ok (Dl_client.Ok_ _) -> ()
  | _ -> Alcotest.fail "server dead after oversized line"

(* Read-your-writes at batch granularity: a query after an ASSERT on the
   same connection must see the fact (the query forces a flip). *)
let test_read_your_writes () =
  with_server () @@ fun addr ->
  with_client addr @@ fun c ->
  install c;
  (match Dl_client.assert_fact c "kv" [ "11"; "22" ] with
  | Ok (Dl_client.Ok_ _) -> ()
  | _ -> Alcotest.fail "assert failed");
  (match Dl_client.query c "out" [ "11"; "_" ] with
  | Ok (Dl_client.Data (_, [ "11\t22" ])) -> ()
  | Ok (Dl_client.Data (_, rows)) ->
    Alcotest.failf "expected one row, got %d" (List.length rows)
  | _ -> Alcotest.fail "query failed");
  (* LOAD batch, then the duplicate is deduplicated *)
  (match Dl_client.load c "kv" [ "11 22"; "33 44"; "55 66" ] with
  | Ok (Dl_client.Ok_ _) -> ()
  | _ -> Alcotest.fail "load failed");
  match Dl_client.query c "out" [ "_"; "_" ] with
  | Ok (Dl_client.Data (_, rows)) -> checki "cardinality" 3 (List.length rows)
  | _ -> Alcotest.fail "audit query failed"

let stats_field c name =
  match Dl_client.stats c with
  | Ok (Dl_client.Data (_, lines)) ->
    List.find_map
      (fun l ->
        match String.index_opt l '=' with
        | Some eq when String.sub l 0 eq = name ->
          Some (String.sub l (eq + 1) (String.length l - eq - 1))
        | _ -> None)
      lines
  | _ -> Alcotest.fail "STATS: bad reply"

(* Raw-socket access, for tests that must pipeline requests without
   waiting for replies (Dl_client is strictly request/reply). *)
let with_raw_conn addr k =
  let path =
    match addr with
    | Telemetry_server.Unix_sock p -> p
    | _ -> Alcotest.fail "expected a unix-socket address"
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      let ic = Unix.in_channel_of_descr fd in
      let (_ : string) = input_line ic (* greeting *) in
      let send s =
        let n = String.length s in
        if Unix.write_substring fd s 0 n <> n then
          Alcotest.fail "short raw write"
      in
      k send ic)

(* A RULES install does not flush queued queries; pipelining QUERY then a
   program that drops/re-declares the queried relations — all in one
   write, so both parse before the flip runs — must yield structured
   errors on the queries, never kill the server domain. *)
let test_rules_swap_queued_query () =
  with_server () @@ fun addr ->
  (with_client addr @@ fun c -> install c);
  (with_raw_conn addr @@ fun send ic ->
   send
     "QUERY out _ _\nQUERY kv _ _\nRULES 2\n.decl kv(a:number)\n.input kv\n";
   (* the RULES ack is sent at install time, before the queries run *)
   let rules_reply = input_line ic in
   checkb "RULES ack" true (String.length rules_reply > 2
                           && String.sub rules_reply 0 2 = "OK");
   let expect_code want =
     match P.parse_response_line (input_line ic) with
     | `Err (code, _) -> check Alcotest.string "queued query code" want code
     | _ -> Alcotest.failf "queued query did not come back as ERR %s" want
   in
   expect_code "relation" (* out: dropped by the new program *);
   expect_code "arity" (* kv: re-declared at arity 1, query has 2 pats *));
  (* the load-bearing assertion: the server domain survived *)
  with_client addr @@ fun c ->
  match Dl_client.ping c with
  | Ok (Dl_client.Ok_ _) -> ()
  | _ -> Alcotest.fail "server dead after program swap under queued queries"

(* LOAD must hold its announced rows against max_pending from the header
   on, so ingest interleaved mid-batch cannot overshoot the cap; the hold
   converts to pending at completion and admission reopens after a flip. *)
let test_load_reserves_pending () =
  let addr = fresh_addr () in
  let cfg =
    {
      (Dl_server.default_config addr) with
      Dl_server.workers = 2;
      flip_pending = 1000;
      flip_interval_ms = 1000;
      max_pending = 10;
    }
  in
  match Dl_server.start cfg with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok srv ->
    Fun.protect ~finally:(fun () -> Dl_server.stop srv) @@ fun () ->
    (with_client addr @@ fun c -> install c);
    with_raw_conn addr @@ fun send ic ->
    send "LOAD kv 10\n1 1\n2 2\n3 3\n4 4\n5 5\n" (* 5 of 10 lines *);
    with_client addr @@ fun c2 ->
    let rec await_reservation tries =
      if tries = 0 then Alcotest.fail "reservation never visible in STATS";
      match stats_field c2 "reserved_ingest" with
      | Some "10" -> ()
      | _ ->
        Unix.sleepf 0.01;
        await_reservation (tries - 1)
    in
    await_reservation 500;
    (* pending(0) + reserved(10) + 1 > 10: rejected, not admitted *)
    (match Dl_client.assert_fact c2 "kv" [ "77"; "88" ] with
    | Ok (Dl_client.Err ("busy", _)) -> ()
    | _ -> Alcotest.fail "mid-batch assert admitted past the cap");
    send "6 6\n7 7\n8 8\n9 9\n10 10\n";
    (match P.parse_response_line (input_line ic) with
    | `Ok _ -> ()
    | _ -> Alcotest.fail "completed LOAD not acked");
    (* a query forces a flip; pending drains and admission reopens *)
    (match Dl_client.query c2 "out" [ "_"; "_" ] with
    | Ok (Dl_client.Data (_, rows)) -> checki "loaded rows" 10 (List.length rows)
    | _ -> Alcotest.fail "post-load query failed");
    match Dl_client.assert_fact c2 "kv" [ "77"; "88" ] with
    | Ok (Dl_client.Ok_ _) -> ()
    | _ -> Alcotest.fail "admission did not reopen after the flip"

(* A batch whose accumulated payload exceeds max_batch_bytes is rejected
   with ERR proto (its buffered lines dropped) and the session survives. *)
let test_batch_bytes_cap () =
  with_server () @@ fun addr ->
  with_client addr @@ fun c ->
  install c;
  let line = String.make P.max_line 'x' in
  let n = (P.max_batch_bytes / P.max_line) + 1 in
  (match Dl_client.load c "kv" (List.init n (fun _ -> line)) with
  | Ok (Dl_client.Err ("proto", _)) -> ()
  | Ok _ -> Alcotest.fail "oversized batch not rejected as ERR proto"
  | Error m -> Alcotest.failf "oversized batch killed the connection: %s" m);
  match Dl_client.ping c with
  | Ok (Dl_client.Ok_ _) -> ()
  | _ -> Alcotest.fail "connection dead after oversized batch"

(* The acceptance test: N client domains mix ASSERT and QUERY against one
   server; every acked fact is unique, so the served relation must equal
   the acked set exactly, with zero phase violations. *)
let test_concurrent_clients () =
  let domains = 4 and per = 120 in
  with_server ~flip_pending:16 ~flip_interval_ms:2 () @@ fun addr ->
  (with_client addr @@ fun c -> install c);
  let acked = Array.make domains 0 in
  let clients =
    List.init domains (fun w ->
        Domain.spawn (fun () ->
            with_client addr @@ fun c ->
            for i = 0 to per - 1 do
              (* (i, w) is globally unique per client *)
              (match
                 Dl_client.assert_fact c "kv"
                   [ string_of_int i; string_of_int w ]
               with
              | Ok (Dl_client.Ok_ _) -> acked.(w) <- acked.(w) + 1
              | Ok (Dl_client.Err (code, m)) ->
                Alcotest.failf "client %d assert: %s %s" w code m
              | Ok _ | Error _ -> Alcotest.failf "client %d assert died" w);
              (* interleave reads: row count for this client only grows *)
              if i land 15 = 0 then
                match Dl_client.query c "out" [ "_"; string_of_int w ] with
                | Ok (Dl_client.Data (_, rows)) ->
                  if List.length rows > i + 1 then
                    Alcotest.failf "client %d sees %d rows at i=%d" w
                      (List.length rows) i
                | Ok (Dl_client.Err (code, m)) ->
                  Alcotest.failf "client %d query: %s %s" w code m
                | Ok _ | Error _ -> Alcotest.failf "client %d query died" w
            done))
  in
  List.iter Domain.join clients;
  Array.iteri (fun w n -> checki (Printf.sprintf "client %d acks" w) per n)
    acked;
  with_client addr @@ fun c ->
  (match Dl_client.query c "out" [ "_"; "_" ] with
  | Ok (Dl_client.Data (_, rows)) ->
    checki "total served" (domains * per) (List.length rows);
    let seen = Hashtbl.create (domains * per) in
    List.iter (fun r -> Hashtbl.replace seen r ()) rows;
    for w = 0 to domains - 1 do
      for i = 0 to per - 1 do
        let row = Printf.sprintf "%d\t%d" i w in
        if not (Hashtbl.mem seen row) then
          Alcotest.failf "acked fact %S not served" row
      done
    done
  | _ -> Alcotest.fail "audit query failed");
  match stats_field c "phase_violations" with
  | Some "0" -> ()
  | Some v -> Alcotest.failf "phase_violations=%s" v
  | None -> Alcotest.fail "STATS missing phase_violations"

(* SHUTDOWN drains: the issuing client gets OK, the server exits, and the
   socket stops accepting. *)
let test_shutdown () =
  let addr = fresh_addr () in
  let cfg =
    { (Dl_server.default_config addr) with Dl_server.workers = 2 }
  in
  match Dl_server.start cfg with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok srv ->
    (with_client addr @@ fun c ->
     match Dl_client.shutdown c with
     | Ok (Dl_client.Ok_ _) -> ()
     | _ -> Alcotest.fail "SHUTDOWN: bad reply");
    Dl_server.wait srv;
    (match Dl_client.connect addr with
    | Error _ -> ()
    | Ok c ->
      Dl_client.close c;
      Alcotest.fail "server still accepting after shutdown")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "server"
    [
      ( "proto",
        [
          tc "verbs parse" `Quick test_parse_verbs;
          tc "malformed requests rejected" `Quick test_parse_errors;
          tc "parse is total under fuzz" `Quick test_parse_total_fuzz;
          tc "response round-trip" `Quick test_response_roundtrip;
          tc "error codes closed set" `Quick test_err_codes;
        ] );
      ( "server",
        [
          tc "hostile lines yield structured ERR" `Quick test_hostile_lines;
          tc "oversized line contained" `Quick test_oversized_line;
          tc "read-your-writes" `Quick test_read_your_writes;
          tc "program swap with queued queries" `Quick
            test_rules_swap_queued_query;
          tc "LOAD reserves against max_pending" `Quick
            test_load_reserves_pending;
          tc "batch payload byte cap" `Quick test_batch_bytes_cap;
          tc "concurrent clients exact audit" `Quick test_concurrent_clients;
          tc "shutdown drains" `Quick test_shutdown;
        ] );
    ]
