(* R1 firing fixture: a "lock-free" event recorder sharing one ring
   across domains through raw atomics — the design rule R1 exists to
   keep this out of unwhitelisted modules.  The real recorder
   (lib/telemetry/flight.ml) keeps one ring per domain behind
   Domain.DLS and needs no atomics at all.  Never compiled — test data
   for test_lint.ml. *)

type ring = { slots : int array; cursor : int Atomic.t }

let shared = { slots = Array.make 4096 0; cursor = Atomic.make 0 }

let record code =
  let i = Atomic.fetch_and_add shared.cursor 1 in
  shared.slots.(i land 4095) <- code
