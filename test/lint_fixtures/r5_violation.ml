(* R5 firing fixture: file descriptors that leak.  Never compiled —
   test data for test_lint.ml. *)

(* not closed on the path that returns None *)
let read_flag path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let buf = Bytes.create 1 in
  if Unix.read fd buf 0 1 = 1 then begin
    Unix.close fd;
    Some (Bytes.get buf 0)
  end
  else None

(* closed on success only: leaks when write_header raises *)
let write_header fd = ignore (Unix.write fd (Bytes.make 4 'x') 0 4)

let fresh_log path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  write_header fd;
  Unix.close fd

(* the accepted socket leaks if the greeting raises *)
let greet fd = ignore (Unix.write fd (Bytes.make 2 'h') 0 2)

let serve lfd =
  match Unix.accept lfd with
  | fd, _peer ->
    greet fd;
    Unix.close fd
