(* R1 conforming fixture: the flight-recorder shape — per-domain rings
   reached through Domain.DLS, a mutex-protected registry for the
   drain side, and no atomics anywhere: every hot-path store is
   domain-local.  Never compiled — test data for test_lint.ml. *)

type ring = { slots : int array; mutable pos : int }

let rings : ring list ref = ref []
let rings_mutex = Mutex.create ()

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r = { slots = Array.make 4096 0; pos = 0 } in
      Mutex.protect rings_mutex (fun () -> rings := r :: !rings);
      r)

let record code =
  let r = Domain.DLS.get ring_key in
  r.slots.(r.pos) <- code;
  r.pos <- (r.pos + 1) land 4095

let drain () =
  Mutex.protect rings_mutex (fun () ->
      List.concat_map (fun r -> Array.to_list r.slots) !rings)
