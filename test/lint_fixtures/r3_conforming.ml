(* R3 conforming fixture: blocking work hoisted out of the critical
   section.  Never compiled — test data for test_lint.ml. *)

let insert pool lock compute store =
  let v = compute () in
  Pool.run pool (fun _ -> ());
  Olock.start_write lock;
  store v;
  Olock.end_write lock

let guarded lock mutate =
  if Olock.try_start_write lock then begin
    mutate ();
    Olock.end_write lock;
    (* after the release the permit is gone: I/O is fine again *)
    print_endline "done";
    true
  end
  else false

let upgrade_then_write lock lease mutate =
  if Olock.try_upgrade_to_write lock lease then begin
    mutate ();
    Olock.end_write lock
  end
