(* R2 firing fixture: leases that escape or go unvalidated.  Never
   compiled — test data for test_lint.ml. *)

(* Escapes into a constructor, and is never validated: two findings. *)
let peek lock =
  let lease = Olock.start_read lock in
  Some lease

(* The implicit else-branch drops the lease, and [compute] is not a
   validation, so the failure-path exemption does not apply. *)
let unvalidated_branch lock compute =
  let lease = Olock.start_read lock in
  if compute () then ignore (Olock.end_read lock lease)

(* A lease made only to be thrown away. *)
let dropped lock = ignore (Olock.start_read lock)
