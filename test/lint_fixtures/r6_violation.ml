(* R6 firing fixture (checked with ~server:true): admissions into the
   fact store that are not dominated by a WAL append.  Never compiled —
   test data for test_lint.ml. *)

type store = { mutable fs_rows : string list; mutable fs_count : int }

let admit_ingest _st _rel = ()

let install_program _st _prog = 1

let assert_fact st fs row =
  fs.fs_rows <- row :: fs.fs_rows;
  fs.fs_count <- fs.fs_count + 1;
  admit_ingest st "edge"

let load_rules st prog = ignore (install_program st prog)
