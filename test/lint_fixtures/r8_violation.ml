(* R8 firing fixture: suppressions that suppress nothing.  Never
   compiled — test data for test_lint.ml. *)

(* wrong rule name — the finding it meant to cover still fires *)
let cast x = (Obj.magic x [@lint.allow "hygeine: typo never matches"])

(* nothing in this binding can fire lease-discipline *)
let add a b = (a + b) [@lint.allow "lease-discipline: stale from a refactor"]
