(* R4 firing fixture, checked with hot:true: Obj.magic and polymorphic
   comparisons.  Never compiled — test data for test_lint.ml. *)

let cast (x : int) : bool = Obj.magic x

let sort_pairs xs = List.sort compare xs

let same_span (a, b) (c, d) = (a, b) = (c, d)

let cmp_any x y = Stdlib.compare x y
