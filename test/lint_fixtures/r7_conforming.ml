(* R7 conforming fixture: the select loop only touches blocking work
   through [@lint.dispatch]-annotated points, and recursing on itself
   is exempt.  Never compiled — test data for test_lint.ml. *)

let[@lint.dispatch "reads only fds the select reported readable"] handle fd =
  ignore (Unix.read fd (Bytes.create 64) 0 64)

let[@lint.dispatch "accepts only when the listener polled readable"] accept_ready
    lfd =
  match Unix.accept lfd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | fd, _peer -> Unix.close fd

let rec loop lfd fds =
  let rd, _, _ = Unix.select (lfd :: fds) [] [] 0.25 in
  List.iter (fun fd -> handle fd) rd;
  if List.mem lfd rd then accept_ready lfd;
  loop lfd fds
