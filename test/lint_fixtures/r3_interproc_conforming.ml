(* Interprocedural R3 conforming fixture: the helper called under the
   permit is pure; the blocking helper runs before acquisition.  Never
   compiled — test data for test_lint.ml. *)

let settle () = Unix.sleepf 0.01

let bump counts i = counts.(i) <- counts.(i) + 1

let insert lock counts i =
  settle ();
  Olock.start_write lock;
  bump counts i;
  Olock.end_write lock
