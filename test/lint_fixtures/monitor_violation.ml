(* R1 firing fixture: a telemetry monitor loop publishing its latest
   sampled window through a shared mutable snapshot guarded only by raw
   atomics — sampler on the monitor domain, scrape handler on whatever
   domain accepts the connection.  The design rule R1 exists to keep
   this out of unwhitelisted modules: the real monitor
   (lib/telemetry/telemetry_server.ml) keeps the window ring
   domain-confined and serves requests on the same domain, so no
   cross-domain publication exists at all.  Never compiled — test data
   for test_lint.ml. *)

type snapshot = { counts : int array; seq : int Atomic.t }

let shared = { counts = Array.make 64 0; seq = Atomic.make 0 }

let sample totals =
  (* torn with respect to readers: counts and seq are not updated
     atomically together *)
  Array.blit totals 0 shared.counts 0 (Array.length totals);
  Atomic.incr shared.seq

let scrape () =
  let s = Atomic.get shared.seq in
  (s, Array.copy shared.counts)
