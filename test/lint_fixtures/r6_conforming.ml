(* R6 conforming fixture (checked with ~server:true): every admission
   is dominated by a WAL append — lexically inside the Ok-side of a
   match on a wal-appending helper, or sequenced after one.  Never
   compiled — test data for test_lint.ml. *)

type store = { mutable fs_rows : string list; mutable fs_count : int }

let admit_ingest _st _rel = ()

let wal_admit st entry = Wal.append st entry

let assert_fact st fs row =
  match wal_admit st row with
  | Error e -> Error e
  | Ok () ->
    fs.fs_rows <- row :: fs.fs_rows;
    fs.fs_count <- fs.fs_count + 1;
    admit_ingest st "edge";
    Ok ()

let reset st fs =
  ignore (wal_admit st "reset");
  fs.fs_count <- 0
