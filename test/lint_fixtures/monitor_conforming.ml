(* R1 conforming fixture: the telemetry-monitor shape — the window ring
   is domain-confined state owned by the monitor loop (sampler and
   request handler run on the same domain, so the ring needs no
   synchronization at all), and the only shared state is a cold-path
   registry published under a mutex.  Mirrors
   lib/telemetry/telemetry_server.ml.  Never compiled — test data for
   test_lint.ml. *)

type window = { counts : int array; seq : int }

(* cold-path registry: external gauge providers, mutex-published *)
let providers : (string * (unit -> float)) list ref = ref []
let providers_mutex = Mutex.create ()

let register name f =
  Mutex.protect providers_mutex (fun () ->
      providers := (name, f) :: !providers)

let current_providers () =
  Mutex.protect providers_mutex (fun () -> !providers)

(* monitor loop: ring and cursor live in the loop's own frame and never
   escape the monitor domain *)
let monitor_loop serve =
  let ring = Array.make 64 None in
  let rec loop seq =
    let w = { counts = Array.make 64 seq; seq } in
    ring.(seq mod Array.length ring) <- Some w;
    ignore (current_providers ());
    serve ring;
    loop (seq + 1)
  in
  loop 0
