(* R5 conforming fixture: every fd is closed on every path, released
   through Fun.protect, handed off, or returned.  Never compiled — test
   data for test_lint.ml. *)

let read_flag path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let buf = Bytes.create 1 in
      if Unix.read fd buf 0 1 = 1 then Some (Bytes.get buf 0) else None)

let write_header fd = ignore (Unix.write fd (Bytes.make 4 'x') 0 4)

(* close-on-error before re-raising discharges the risky call *)
let fresh_log path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (match write_header fd with
  | () -> ()
  | exception e ->
    (try Unix.close fd with _ -> ());
    raise e);
  Unix.close fd

(* returning the fd in tail position hands ownership to the caller *)
let open_log path =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  fd

(* handing to a [with_]-style owner is a hand-off *)
let sum path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  with_input_fd fd

(* accepted socket owned by Fun.protect; EINTR path never binds it *)
let serve lfd handle =
  match Unix.accept lfd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | fd, _peer ->
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> handle fd)
