(* R8 conforming fixture: every suppression matches a live finding and
   carries a justification.  Never compiled — test data for
   test_lint.ml. *)

let cast x = (Obj.magic x [@lint.allow "hygiene: FFI shim, checked by the caller"])

let epoch =
  (Atomic.make 0
  [@lint.allow "atomic-confinement: epoch word read from a signal handler"])
