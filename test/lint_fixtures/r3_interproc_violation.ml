(* Interprocedural R3 firing fixture: the write-permit region calls a
   local helper whose *transitive* summary may block — nothing at the
   call site looks blocking.  Never compiled — test data for
   test_lint.ml. *)

(* blocks directly *)
let settle () = Unix.sleepf 0.01

(* blocks one hop further away *)
let settle_twice () =
  settle ();
  settle ()

let insert lock store v =
  Olock.start_write lock;
  store v;
  settle_twice ();
  Olock.end_write lock
