(* R1 firing fixture: raw atomics outside the sync modules, checked with
   atomic_ok:false.  Never compiled — test data for test_lint.ml. *)

type stats = { hits : int Atomic.t }

let make () = { hits = Atomic.make 0 }
let record t = Atomic.incr t.hits

(* An allow without a justification does not silence R1. *)
let sloppy = (Atomic.make 0 [@lint.allow "atomic-confinement"])
