(* R3 firing fixture: blocking calls between acquiring and releasing a
   write permit.  Never compiled — test data for test_lint.ml. *)

let rebalance pool lock =
  Olock.start_write lock;
  Pool.run pool (fun _ -> ());
  Olock.end_write lock

let log_under_permit lock msg =
  if Olock.try_start_write lock then begin
    print_endline msg;
    Olock.end_write lock
  end

let lease_under_permit lock other =
  Olock.start_write lock;
  let lease = Olock.start_read other in
  ignore (Olock.valid other lease);
  Olock.end_write lock

let timed_insert lock =
  Olock.start_write lock;
  let t = Unix.gettimeofday () in
  Olock.end_write lock;
  t
