(* R7 firing fixture: blocking work inlined into a select loop without
   a sanctioned dispatch point.  Never compiled — test data for
   test_lint.ml. *)

let handle fd = ignore (Unix.read fd (Bytes.create 64) 0 64)

let rec loop lfd fds =
  let rd, _, _ = Unix.select (lfd :: fds) [] [] 0.25 in
  List.iter (fun fd -> handle fd) rd;
  (if rd = [] then ignore (Unix.accept lfd));
  loop lfd fds
