(* R1 conforming fixture: shared state behind the Sync helpers, plus one
   justified escape hatch.  Never compiled — test data for test_lint.ml. *)

let pending = Sync.Counter.make 0
let record () = Sync.Counter.incr pending
let drained () = Sync.Counter.get pending

(* A justified [@lint.allow "atomic-confinement: why"] is accepted. *)
let epoch =
  (Atomic.make 0
  [@lint.allow
    "atomic-confinement: epoch word is read from a signal handler, no \
     Sync wrapper can be used there"])
