(* R4 conforming fixture, checked with hot:true: specialised comparators
   only; a labelled [~compare] parameter legitimately shadows the
   polymorphic one.  Never compiled — test data for test_lint.ml. *)

let sort_keys xs = List.sort Key.compare xs

let same_span (a, b) (c, d) = Int.equal a c && Int.equal b d

let sorted_by ~compare xs = List.sort compare xs

let lex (a1, b1) (a2, b2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c else Int.compare b1 b2
