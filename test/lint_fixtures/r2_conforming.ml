(* R2 conforming fixture: every lease is validated, upgraded, handed off,
   or abandoned only after a failed validation.  Never compiled — test
   data for test_lint.ml. *)

let read lock data =
  let lease = Olock.start_read lock in
  let v = data () in
  if Olock.end_read lock lease then Some v else None

let upgrade lock =
  let lease = Olock.start_read lock in
  if Olock.try_upgrade_to_write lock lease then begin
    Olock.end_write lock;
    true
  end
  else false

(* Handing the lease to a helper is the callee's obligation. *)
let handoff helper lock =
  let lease = Olock.start_read lock in
  helper lock lease

(* The then-branch abandons [lease], but it is the failure branch of a
   validation on the enclosing node — an invalidated lease carries no
   obligation. *)
let restart_on_failure lock parent parent_lease use =
  let lease = Olock.start_read lock in
  if not (Olock.valid parent parent_lease) then None else Some (use lease)
