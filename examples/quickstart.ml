(* Quickstart: the specialized concurrent B-tree as a library.

     dune exec examples/quickstart.exe

   Walks through the public API: creation, session-hinted insertion,
   membership, bound queries, range scans, and a concurrent insertion phase
   driven by multiple domains — the paper's write-phase / read-phase usage
   pattern. *)

module T = Btree.Make (Key.Pair)

let () =
  print_endline "== specialized concurrent B-tree: quickstart ==\n";

  (* 1. build a tree single-threaded, through a per-domain session (the
     session owns this domain's operation hints) *)
  let tree = T.create () in
  let sess = T.session tree in
  for x = 0 to 99 do
    for y = 0 to 99 do
      ignore (T.s_insert sess (x, y) : bool)
    done
  done;
  Printf.printf "inserted a 100x100 grid of 2D tuples: cardinal = %d\n"
    (T.cardinal tree);
  let s = T.hint_stats (T.s_hints sess) in
  Printf.printf "ordered insertion drove the insert hint: %d hits / %d misses\n"
    s.T.insert_hits s.T.insert_misses;

  (* 2. point queries and bounds *)
  Printf.printf "mem (7, 10)   = %b\n" (T.s_mem sess (7, 10));
  Printf.printf "mem (7, 100)  = %b\n" (T.s_mem sess (7, 100));
  (match T.lower_bound tree (42, 98) with
  | Some (x, y) -> Printf.printf "lower_bound (42, 98) = (%d, %d)\n" x y
  | None -> print_endline "lower_bound (42, 98) = none");
  (match T.upper_bound tree (42, 99) with
  | Some (x, y) -> Printf.printf "upper_bound (42, 99) = (%d, %d)  (next row)\n" x y
  | None -> print_endline "upper_bound (42, 99) = none");

  (* 3. range scan: all tuples with first component 13 — the nested-loop
     join access pattern of Datalog evaluation *)
  let row = ref 0 in
  T.iter_from
    (fun (x, _) ->
      if x = 13 then begin
        incr row;
        true
      end
      else false)
    tree (13, 0);
  Printf.printf "range scan of row 13 visited %d tuples\n" !row;

  (* 4. concurrent write phase: domains share the tree, each through its
     own session; no other synchronisation is needed *)
  let tree2 = T.create () in
  let workers = max 2 (Domain.recommended_domain_count ()) in
  let per = 50_000 in
  let spawn w =
    Domain.spawn (fun () ->
        let s = T.session tree2 in
        for i = 0 to per - 1 do
          ignore (T.s_insert s (w, i) : bool)
        done)
  in
  let t0 = Bench_util.wall () in
  let ds = List.init workers spawn in
  List.iter Domain.join ds;
  let dt = Bench_util.wall () -. t0 in
  Printf.printf
    "\n%d domains inserted %d tuples concurrently in %.3fs (%.2f M ins/s)\n"
    workers (workers * per) dt
    (Bench_util.mops (workers * per) dt);
  Printf.printf "final cardinal = %d (no lost updates)\n" (T.cardinal tree2);
  T.check_invariants tree2;
  print_endline "structural invariants hold";

  (* 5. structure statistics *)
  let st = T.stats tree2 in
  Printf.printf
    "tree stats: %d nodes, %d leaves, height %d, fill grade %.2f\n"
    st.T.nodes st.T.leaves st.T.height st.T.fill
