(* Network reachability / security analysis — the read-heavy real-world
   workload of the paper's Fig. 5b, on a synthetic cloud estate.

     dune exec examples/network_security.exe *)

let () =
  let cfg = Network_gen.default in
  let rng = Rng.create 99 in
  let facts = Network_gen.facts cfg rng in
  Printf.printf
    "synthetic estate: %d instances, %d security groups, %d ports; %d facts\n"
    cfg.Network_gen.instances cfg.Network_gen.groups cfg.Network_gen.ports
    (List.length facts);

  let threads = max 1 (Domain.recommended_domain_count ()) in
  let engine = Engine.create ~instrument:true Network_gen.program in
  List.iter (fun (r, t) -> Engine.add_fact engine r t) facts;
  let t0 = Bench_util.wall () in
  Pool.with_pool threads (fun pool -> Engine.run engine pool);
  let dt = Bench_util.wall () -. t0 in

  Printf.printf "\nanalysis (btree, %d threads): %.3fs, %d rounds\n" threads dt
    (Engine.iterations engine);
  Printf.printf "reach (transitive, output): %8d tuples\n"
    (Engine.relation_size engine "reach");
  Printf.printf "exposed (from node 0):      %8d tuples\n"
    (Engine.relation_size engine "exposed");

  (match Engine.stats engine with
  | Some s ->
    let reads = s.Dl_stats.s_mem_tests + s.Dl_stats.s_lower_bounds in
    Printf.printf
      "operation mix: %d inserts vs %d reads (%.1fx read heavy, like the \
       paper's EC2 workload)\n"
      s.Dl_stats.s_inserts reads
      (float_of_int reads /. float_of_int (max 1 s.Dl_stats.s_inserts))
  | None -> ());
  (match Engine.hint_rate engine with
  | Some r ->
    Printf.printf "hint hit rate: %.0f%% (paper reports ~77%% for its \
                   read-heavy analysis)\n"
      (100.0 *. r)
  | None -> ());

  (* which ports leak the most reachability? *)
  let per_port = Hashtbl.create 16 in
  Engine.iter_relation engine "reach" (fun tup ->
      let p = tup.(2) in
      Hashtbl.replace per_port p
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_port p)));
  let ports =
    List.sort (fun (_, a) (_, b) -> compare b a)
      (Hashtbl.fold (fun p c acc -> (p, c) :: acc) per_port [])
  in
  print_endline "\nreachable pairs per port (top 3):";
  List.iteri
    (fun i (p, c) -> if i < 3 then Printf.printf "  port %d: %d pairs\n" p c)
    ports
