(* Transitive closure — the paper's running example (Fig. 1) — evaluated by
   the Datalog engine over a generated graph, comparing relation storages.

     dune exec examples/transitive_closure.exe *)

let tc_src =
  {|
  .decl edge(x:number, y:number)
  .input edge
  .decl path(x:number, y:number)
  .output path
  path(x, y) :- edge(x, y).
  path(x, z) :- path(x, y), edge(y, z).
  |}

let run_with kind threads edges =
  let prog = Parser.parse_string tc_src in
  let engine = Engine.create ~kind prog in
  Array.iter (fun (u, v) -> Engine.add_fact engine "edge" [| u; v |]) edges;
  let t0 = Bench_util.wall () in
  Pool.with_pool threads (fun pool -> Engine.run engine pool);
  let dt = Bench_util.wall () -. t0 in
  (Engine.relation_size engine "path", Engine.iterations engine, dt)

let () =
  let rng = Rng.create 2024 in
  let edges = Graphs.random_digraph rng ~nodes:1500 ~edges:3000 in
  Printf.printf "random digraph: 1500 nodes, %d edges\n" (Array.length edges);
  let threads = max 1 (Domain.recommended_domain_count ()) in

  (* closure size must agree across every storage backend *)
  let results =
    List.map
      (fun kind ->
        let size, iters, dt = run_with kind threads edges in
        (Storage.kind_name kind, size, iters, dt))
      Storage.all_kinds
  in
  let _, ref_size, _, _ =
    let n, s, i, d = List.hd results in
    (n, s, i, d)
  in
  Bench_util.Table.print
    ~header:[ "storage"; "paths"; "iterations"; "seconds" ]
    ~rows:
      (List.map
         (fun (name, size, iters, dt) ->
           [ name; string_of_int size; string_of_int iters; Printf.sprintf "%.3f" dt ])
         results);
  if List.for_all (fun (_, s, _, _) -> s = ref_size) results then
    Printf.printf "\nall storages agree on the closure: %d paths\n" ref_size
  else begin
    print_endline "\nERROR: storages disagree!";
    exit 1
  end;

  (* grid graph: longer chains, more fixed-point rounds *)
  let grid = Graphs.grid ~width:40 ~height:25 in
  let size, iters, dt = run_with Storage.Btree threads grid in
  Printf.printf
    "\n40x25 grid: %d paths in %d fixed-point rounds (%.3fs, btree, %d threads)\n"
    size iters dt threads
