examples/network_security.ml: Array Bench_util Dl_stats Domain Engine Hashtbl List Network_gen Option Pool Printf Rng
