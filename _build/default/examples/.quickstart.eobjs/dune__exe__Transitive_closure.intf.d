examples/transitive_closure.mli:
