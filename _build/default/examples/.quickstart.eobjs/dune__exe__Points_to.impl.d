examples/points_to.ml: Array Bench_util Dl_stats Domain Engine Eval Hashtbl List Option Pointsto_gen Pool Printf Rng Storage
