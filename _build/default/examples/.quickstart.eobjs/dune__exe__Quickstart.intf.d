examples/quickstart.mli:
