examples/transitive_closure.ml: Array Bench_util Domain Engine Graphs List Parser Pool Printf Rng Storage
