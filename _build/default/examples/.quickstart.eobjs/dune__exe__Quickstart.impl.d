examples/quickstart.ml: Bench_util Btree Domain Key List Printf
