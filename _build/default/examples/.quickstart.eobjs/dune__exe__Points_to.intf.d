examples/points_to.mli:
