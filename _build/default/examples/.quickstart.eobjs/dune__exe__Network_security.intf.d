examples/network_security.mli:
