(* Var-points-to analysis — the insertion-heavy real-world workload of the
   paper's Fig. 5a, on a synthetic program.

     dune exec examples/points_to.exe *)

let () =
  let cfg = Pointsto_gen.default in
  let rng = Rng.create 7 in
  let facts = Pointsto_gen.facts cfg rng in
  Printf.printf
    "synthetic program: %d vars, %d objects, %d fields; %d input statements\n"
    cfg.Pointsto_gen.variables cfg.Pointsto_gen.objects cfg.Pointsto_gen.fields
    (List.length facts);

  let threads = max 1 (Domain.recommended_domain_count ()) in
  let run kind =
    let engine =
      Engine.create ~kind ~instrument:true ~profile:true
        (Pointsto_gen.program cfg)
    in
    List.iter (fun (r, t) -> Engine.add_fact engine r t) facts;
    let t0 = Bench_util.wall () in
    Pool.with_pool threads (fun pool -> Engine.run engine pool);
    let dt = Bench_util.wall () -. t0 in
    (engine, dt)
  in

  let engine, dt = run Storage.Btree in
  Printf.printf "\nanalysis (btree, %d threads): %.3fs, %d rounds\n" threads dt
    (Engine.iterations engine);
  Printf.printf "vpt (var points-to):  %8d tuples\n"
    (Engine.relation_size engine "vpt");
  Printf.printf "hpt (heap points-to): %8d tuples\n"
    (Engine.relation_size engine "hpt");
  (match Engine.stats engine with
  | Some s ->
    Printf.printf
      "operation mix: %d inserts, %d membership tests, %d range queries — \
       insertion heavy, as in the paper's Doop workload\n"
      s.Dl_stats.s_inserts s.Dl_stats.s_mem_tests s.Dl_stats.s_lower_bounds
  | None -> ());
  (match Engine.hint_rate engine with
  | Some r -> Printf.printf "hint hit rate: %.0f%%\n" (100.0 *. r)
  | None -> ());

  (* a concrete query: the points-to set of the hottest variable *)
  let hottest = ref (-1) and best = ref 0 in
  let counts = Hashtbl.create 256 in
  Engine.iter_relation engine "vpt" (fun tup ->
      let v = tup.(0) in
      let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts v) in
      Hashtbl.replace counts v c;
      if c > !best then begin
        best := c;
        hottest := v
      end);
  Printf.printf "largest points-to set: variable v%d -> %d objects\n" !hottest
    !best;

  (* where does the time go?  per-rule profile, hottest first *)
  print_endline "\nhottest rule versions:";
  List.iteri
    (fun i (p : Eval.rule_profile) ->
      if i < 3 then
        Printf.printf "  %6.2fs %s %s\n" p.Eval.rp_seconds
          (if p.Eval.rp_delta then "[delta]" else "[seed] ")
          p.Eval.rp_rule)
    (Engine.rule_profile engine);

  (* cross-check against the hint-less ablation *)
  let engine2, dt2 = run Storage.Btree_nohints in
  Printf.printf "\nwithout hints: %.3fs (same result: %b)\n" dt2
    (Engine.relation_size engine2 "vpt" = Engine.relation_size engine "vpt")
