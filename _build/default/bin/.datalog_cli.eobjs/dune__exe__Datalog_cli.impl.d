bin/datalog_cli.ml: Arg Array Bench_util Cmd Cmdliner Dl_io Dl_stats Engine Eval Filename Format List Parser Plan Pool Printf Storage Stratify String Term
