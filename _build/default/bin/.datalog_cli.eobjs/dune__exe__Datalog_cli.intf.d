bin/datalog_cli.mli:
