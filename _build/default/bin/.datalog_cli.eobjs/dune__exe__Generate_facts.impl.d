bin/generate_facts.ml: Arg Array Ast Cmd Cmdliner Filename Format Hashtbl List Network_gen Pointsto_gen Printf Rng String Sys Term Unix
