bin/generate_facts.mli:
