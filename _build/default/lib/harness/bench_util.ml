let wall () = Unix.gettimeofday ()

let time f =
  let t0 = wall () in
  let r = f () in
  (r, wall () -. t0)

let best_of n f =
  let best = ref infinity in
  for _ = 1 to max 1 n do
    let _, d = time f in
    if d < !best then best := d
  done;
  !best

let mops count seconds =
  if seconds <= 0.0 then 0.0 else float_of_int count /. seconds /. 1e6

let thread_counts ~max:m =
  let rec go t acc = if t >= m then List.rev (m :: acc) else go (t * 2) (t :: acc) in
  if m <= 1 then [ 1 ] else go 1 []

let fmt_f v =
  if v = 0.0 then "0"
  else if Float.abs v >= 100.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.3f" v

module Table = struct
  let print ~header ~rows =
    let all = header :: rows in
    let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
    let width = Array.make ncols 0 in
    List.iter
      (fun row ->
        List.iteri
          (fun i cell -> width.(i) <- max width.(i) (String.length cell))
          row)
      all;
    let print_row row =
      let cells =
        List.mapi
          (fun i cell -> Printf.sprintf "%-*s" width.(i) cell)
          row
      in
      print_string "  ";
      print_endline (String.concat "  " cells)
    in
    print_row header;
    print_row
      (List.mapi (fun i _ -> String.make width.(i) '-') header);
    List.iter print_row rows
end
