(** Timing and reporting utilities shared by the benchmark harness and the
    examples. *)

val wall : unit -> float
(** Monotonic-enough wall clock in seconds. *)

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed wall time. *)

val best_of : int -> (unit -> unit) -> float
(** Minimum elapsed time over [n] runs — the standard microbenchmark
    aggregation (minimum rejects scheduler noise). *)

val mops : int -> float -> float
(** [mops count seconds] = millions of operations per second. *)

val thread_counts : max:int -> int list
(** The ladder of thread counts used by the strong-scaling experiments:
    1, 2, 4, ... up to [max], always including [max]. *)

module Table : sig
  val print : header:string list -> rows:string list list -> unit
  (** Fixed-width ASCII table on stdout. *)
end

val fmt_f : float -> string
(** Compact float rendering ("12.3", "0.45"). *)
