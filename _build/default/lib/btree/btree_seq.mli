(** Sequential variant of the specialized B-tree.

    Same data structure and operation hints as {!Btree}, with all
    synchronisation removed.  This is the paper's "seq btree" contestant: it
    isolates the cost of the optimistic locking scheme (compare [seq btree]
    vs [btree] in Fig. 3) and of the hint mechanism (pass or omit [hints]).

    Not thread-safe.  All other semantics match {!Btree}. *)

module Make (K : Key.ORDERED) : sig
  type key = K.t
  type t

  val create : ?capacity:int -> ?binary_search:bool -> unit -> t
  val default_capacity : int

  type hints

  val make_hints : unit -> hints

  type hint_stats = {
    insert_hits : int;
    insert_misses : int;
    find_hits : int;
    find_misses : int;
    lower_bound_hits : int;
    lower_bound_misses : int;
    upper_bound_hits : int;
    upper_bound_misses : int;
  }

  val hint_stats : hints -> hint_stats
  val reset_hint_stats : hints -> unit

  val insert : ?hints:hints -> t -> key -> bool
  val insert_all : ?hints:hints -> t -> t -> unit
  val mem : ?hints:hints -> t -> key -> bool
  val is_empty : t -> bool
  val cardinal : t -> int
  val min_elt : t -> key option
  val max_elt : t -> key option
  val lower_bound : ?hints:hints -> t -> key -> key option
  val upper_bound : ?hints:hints -> t -> key -> key option
  val iter : (key -> unit) -> t -> unit
  val fold : ('a -> key -> 'a) -> 'a -> t -> 'a
  val iter_while : (key -> bool) -> t -> unit
  val iter_from : (key -> bool) -> t -> key -> unit
  val to_list : t -> key list
  val to_sorted_array : t -> key array
  val of_sorted_array : ?capacity:int -> key array -> t

  type stats = {
    elements : int;
    nodes : int;
    leaves : int;
    height : int;
    fill : float;
  }

  val stats : t -> stats
  val check_invariants : t -> unit
end
