lib/btree/btree_seq.ml: Array Key List Printf
