lib/btree/btree_tuples.mli:
