lib/btree/btree.ml: Array Key List Olock Printf
