lib/btree/key.ml: Array Int64 Printf Stdlib String
