lib/btree/key.mli:
