lib/btree/btree.mli: Key
