lib/btree/btree_seq.mli: Key
