lib/btree/btree_tuples.ml: Array List Olock Printf
