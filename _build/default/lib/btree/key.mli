(** Key signatures and ready-made key types for the set data structures.

    Datalog relations are sets of fixed-arity integer tuples ordered
    lexicographically (paper, section 2).  Every container in this
    reproduction — the concurrent B-tree, its sequential variant, the
    baselines and the alternative trees — is a functor over one of these
    signatures, so the same key types are used by all contestants of a
    benchmark. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
  (** Total order; the 3-way comparator the paper tunes for tuples. *)

  val dummy : t
  (** An arbitrary value used to initialise array slots.  Never observed
      through the public API. *)

  val to_string : t -> string
  (** Debug/diagnostic rendering. *)
end

module type HASHABLE = sig
  include ORDERED

  val hash : t -> int
  (** Hash consistent with [compare]: equal keys hash equally. *)

  val equal : t -> t -> bool
end

module Int : HASHABLE with type t = int
(** Single integers — the key type of Table 3 (32-bit integer workload). *)

module Pair : HASHABLE with type t = int * int
(** 2D points under lexicographic order — the key type of Fig. 3 and
    Fig. 4 ("2D data is the most relevant case in many Datalog queries"). *)

module Int_array : HASHABLE with type t = int array
(** Fixed-arity integer tuples under lexicographic order — the key type used
    by the Datalog engine's relations.  Tuples of different lengths are
    ordered by comparing the common prefix first, then by length, so a proper
    prefix sorts before its extensions (which makes prefix range scans
    natural). *)

val mix64 : int -> int
(** A finalizing 64-bit mixer (splitmix64 finalizer); building block for the
    hash functions above and for user-defined key types. *)
