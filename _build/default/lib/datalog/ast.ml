type term =
  | Var of string
  | Int of int
  | Sym of string
  | Add of term * term
  | Sub of term * term
  | Mul of term * term

type cmpop = Lt | Le | Gt | Ge | Eq | Ne
type agg_func = Count | Min | Max | Sum

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of cmpop * term * term
  | Agg of aggregate

and aggregate = {
  agg_result : string;
  agg_func : agg_func;
  agg_arg : term option;
  agg_body : literal list;
}
type rule = { head : atom; body : literal list }

type decl = {
  name : string;
  arity : int;
  is_input : bool;
  is_output : bool;
}

type program = { decls : decl list; rules : rule list }

let rec pp_term fmt = function
  | Var v -> Format.pp_print_string fmt v
  | Int n -> Format.pp_print_int fmt n
  | Sym s -> Format.fprintf fmt "%S" s
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_term a pp_term b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_term a pp_term b
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_term a pp_term b

let cmpop_name = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "="
  | Ne -> "!="

let pp_atom fmt a =
  Format.fprintf fmt "%s(%a)" a.pred
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_term)
    a.args

let agg_name = function
  | Count -> "count"
  | Min -> "min"
  | Max -> "max"
  | Sum -> "sum"

let rec pp_literal fmt = function
  | Pos a -> pp_atom fmt a
  | Neg a -> Format.fprintf fmt "!%a" pp_atom a
  | Cmp (op, a, b) ->
    Format.fprintf fmt "%a %s %a" pp_term a (cmpop_name op) pp_term b
  | Agg g ->
    Format.fprintf fmt "%s = %s %a: { %a }" g.agg_result (agg_name g.agg_func)
      (fun fmt -> function
        | Some t -> Format.fprintf fmt "%a " pp_term t
        | None -> ())
      g.agg_arg
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_literal)
      g.agg_body

let pp_rule fmt r =
  match r.body with
  | [] -> Format.fprintf fmt "%a." pp_atom r.head
  | body ->
    Format.fprintf fmt "%a :- %a." pp_atom r.head
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_literal)
      body

let pp_program fmt p =
  List.iter
    (fun (d : decl) ->
      Format.fprintf fmt ".decl %s/%d%s%s@." d.name d.arity
        (if d.is_input then " input" else "")
        (if d.is_output then " output" else ""))
    p.decls;
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_rule r) p.rules

let atom pred args = { pred; args }
let rule head body = { head; body }
let fact p args = { head = atom p (List.map (fun n -> Int n) args); body = [] }
