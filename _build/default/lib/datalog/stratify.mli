(** Predicate dependency analysis and stratification.

    Builds the dependency graph of a program (an edge [p -> q] for every rule
    with head [p] and body literal over [q]), condenses it with Tarjan's SCC
    algorithm, and orders the components topologically.  Each SCC is a
    stratum: all its relations reach their fixed point together under
    semi-naive evaluation.  Negation edges inside an SCC are rejected
    (non-stratifiable program). *)

exception Not_stratifiable of string
(** Raised when a predicate depends negatively on its own stratum; the
    message names the offending predicates. *)

type t = {
  strata : int array array;
  (** [strata.(s)] = predicate ids of stratum [s], in dependency order —
      stratum 0 first. *)
  stratum_of : int array;  (** inverse mapping: predicate id -> stratum *)
}

val compute :
  npreds:int -> edges:(int * int * bool) list -> t
(** [compute ~npreds ~edges] where an edge [(p, q, negated)] means the
    definition of [p] depends on [q].  @raise Not_stratifiable *)
