(** String interning: bijective mapping between symbol strings and dense
    integer ids, so that relations store plain integer tuples (the paper's
    setting — Soufflé likewise maps all symbols into a numeric domain). *)

type t

val create : unit -> t

val intern : t -> string -> int
(** Stable id for the string; allocates the next id on first sight. *)

val find_opt : t -> string -> int option
val name : t -> int -> string
(** @raise Not_found if the id was never allocated. *)

val size : t -> int
