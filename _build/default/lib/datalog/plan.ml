exception Compile_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Compile_error m)) fmt

type src =
  | Const of int
  | Slot of int
  | SAdd of src * src
  | SSub of src * src
  | SMul of src * src

type match_step = {
  m_pred : int;
  m_delta : bool;
  m_sig : int array;
  m_bound : src array;
  m_checks : (int * src) array;
  m_binds : (int * int) array;
}

type step =
  | SMatch of match_step
  | SNeg of { n_pred : int; n_bound : src array }
  | SCmp of { c_op : Ast.cmpop; c_lhs : src; c_rhs : src }
  | SBind of { b_slot : int; b_src : src }
  | SAgg of agg_step

and agg_step = {
  a_func : Ast.agg_func;
  a_arg : src option;   (* None for count *)
  a_slot : int;         (* slot receiving the result; -1 = check instead *)
  a_check : src option; (* when the result variable was already bound *)
  a_steps : step array; (* the aggregate's inner body (reads full only) *)
}

type crule = {
  cr_head : int;
  cr_head_src : src array;
  cr_steps : step array;
  cr_nslots : int;
  cr_text : string;
}

type t = {
  npreds : int;
  pred_names : string array;
  arities : int array;
  inputs : bool array;
  outputs : bool array;
  strat : Stratify.t;
  facts : (int * int array) list;
  seed_rules : crule list array;
  delta_rules : crule list array;
  sigs_full : int array list array;
  sigs_delta : int array list array;
}

let rule_text r = Format.asprintf "%a" Ast.pp_rule r

(* ------------------------------------------------------------------ *)
(* Predicate resolution                                               *)
(* ------------------------------------------------------------------ *)

type predtab = {
  ids : (string, int) Hashtbl.t;
  mutable names : string list; (* reversed *)
  ars : (int, int) Hashtbl.t;  (* id -> arity; -1 = not yet known *)
  mutable n : int;
}

let resolve_pred pt name arity =
  match Hashtbl.find_opt pt.ids name with
  | Some id ->
    let known = try Hashtbl.find pt.ars id with Not_found -> -1 in
    if known >= 0 && arity >= 0 && known <> arity then
      err "predicate %s used with arity %d but declared with arity %d" name
        arity known;
    if known < 0 && arity >= 0 then Hashtbl.replace pt.ars id arity;
    id
  | None ->
    let id = pt.n in
    pt.n <- id + 1;
    Hashtbl.add pt.ids name id;
    pt.names <- name :: pt.names;
    Hashtbl.replace pt.ars id arity;
    id

(* ------------------------------------------------------------------ *)
(* Rule compilation                                                   *)
(* ------------------------------------------------------------------ *)

exception Unbound of string

(* Compile one ordering of a rule body.  [delta_first] marks the first
   literal as reading the delta relation. *)
let compile_order symtab ~pred_of ~head ~body ~delta_first ~text =
  let slots : (string, int) Hashtbl.t ref = ref (Hashtbl.create 8) in
  let nslots = ref 0 in
  let fresh_slot () =
    let s = !nslots in
    incr nslots;
    s
  in
  (* compile a term whose variables are all bound; raises [Unbound] *)
  let rec cterm = function
    | Ast.Int n -> Const n
    | Ast.Sym s -> Const (Symtab.intern symtab s)
    | Ast.Var v -> (
      match Hashtbl.find_opt !slots v with
      | Some slot -> Slot slot
      | None -> raise (Unbound v))
    | Ast.Add (a, b) -> SAdd (cterm a, cterm b)
    | Ast.Sub (a, b) -> SSub (cterm a, cterm b)
    | Ast.Mul (a, b) -> SMul (cterm a, cterm b)
  in
  let rec compile_literal ~is_delta steps lit =
    match lit with
    | Ast.Pos atom ->
      let bound = ref [] (* (col, src), bound before this literal *)
      and checks = ref []
      and binds = ref [] in
      let seen_here : (string, int) Hashtbl.t = Hashtbl.create 4 in
      List.iteri
        (fun col arg ->
          match arg with
          | Ast.Var v -> (
            match Hashtbl.find_opt !slots v with
            | Some slot -> bound := (col, Slot slot) :: !bound
            | None -> (
              match Hashtbl.find_opt seen_here v with
              | Some slot -> checks := (col, Slot slot) :: !checks
              | None ->
                let slot = fresh_slot () in
                Hashtbl.add seen_here v slot;
                binds := (col, slot) :: !binds))
          | t -> (
            match cterm t with
            | s -> bound := (col, s) :: !bound
            | exception Unbound v ->
              err
                "unsafe rule (arithmetic argument uses unbound variable %s): \
                 %s"
                v text))
        atom.Ast.args;
      (* variables bound by this literal become visible afterwards *)
      Hashtbl.iter (fun v slot -> Hashtbl.replace !slots v slot) seen_here;
      let bound = List.sort (fun (a, _) (b, _) -> compare a b) !bound in
      steps :=
        SMatch
          {
            m_pred = pred_of atom;
            m_delta = is_delta;
            m_sig = Array.of_list (List.map fst bound);
            m_bound = Array.of_list (List.map snd bound);
            m_checks = Array.of_list (List.rev !checks);
            m_binds = Array.of_list (List.rev !binds);
          }
        :: !steps
    | Ast.Neg atom ->
      let n_bound =
        Array.of_list
          (List.map
             (fun arg ->
               match cterm arg with
               | s -> s
               | exception Unbound v ->
                 err
                   "unsafe rule (variable %s of a negated literal is not \
                    bound by the preceding positive body): %s"
                   v text)
             atom.Ast.args)
      in
      steps := SNeg { n_pred = pred_of atom; n_bound } :: !steps
    | Ast.Cmp (op, a, b) -> (
      let ca = try Some (cterm a) with Unbound _ -> None in
      let cb = try Some (cterm b) with Unbound _ -> None in
      match (ca, cb) with
      | Some l, Some r ->
        steps := SCmp { c_op = op; c_lhs = l; c_rhs = r } :: !steps
      | None, Some r -> (
        match (op, a) with
        | Ast.Eq, Ast.Var v ->
          (* assignment form x = e: bind a fresh slot *)
          let slot = fresh_slot () in
          Hashtbl.replace !slots v slot;
          steps := SBind { b_slot = slot; b_src = r } :: !steps
        | _ -> err "unsafe rule (comparison uses unbound variables): %s" text)
      | Some l, None -> (
        match (op, b) with
        | Ast.Eq, Ast.Var v ->
          let slot = fresh_slot () in
          Hashtbl.replace !slots v slot;
          steps := SBind { b_slot = slot; b_src = l } :: !steps
        | _ -> err "unsafe rule (comparison uses unbound variables): %s" text)
      | None, None ->
        err "unsafe rule (comparison uses unbound variables): %s" text)
    | Ast.Agg g ->
      (* the aggregate body gets its own variable scope: outer bindings are
         visible, inner ones vanish afterwards *)
      let saved = Hashtbl.copy !slots in
      let inner = ref [] in
      List.iter
        (fun l ->
          match l with
          | Ast.Pos _ | Ast.Cmp _ -> compile_literal ~is_delta:false inner l
          | Ast.Neg _ | Ast.Agg _ ->
            err "only positive atoms and constraints inside aggregates: %s"
              text)
        g.Ast.agg_body;
      let a_arg =
        match g.Ast.agg_arg with
        | None ->
          if g.Ast.agg_func <> Ast.Count then
            err "aggregate %s needs an argument: %s"
              (match g.Ast.agg_func with
              | Ast.Min -> "min"
              | Ast.Max -> "max"
              | Ast.Sum -> "sum"
              | Ast.Count -> "count")
              text;
          None
        | Some t -> (
          match cterm t with
          | s -> Some s
          | exception Unbound v ->
            err "unbound variable %s in aggregate argument: %s" v text)
      in
      slots := saved;
      let a_slot, a_check =
        match Hashtbl.find_opt !slots g.Ast.agg_result with
        | Some existing -> (-1, Some (Slot existing))
        | None ->
          let sl = fresh_slot () in
          Hashtbl.replace !slots g.Ast.agg_result sl;
          (sl, None)
      in
      steps :=
        SAgg
          {
            a_func = g.Ast.agg_func;
            a_arg;
            a_slot;
            a_check;
            a_steps = Array.of_list (List.rev !inner);
          }
        :: !steps
  in
  let steps = ref [] in
  List.iteri
    (fun li lit -> compile_literal ~is_delta:(delta_first && li = 0) steps lit)
    body;
  let cr_head_src =
    Array.of_list
      (List.map
         (fun arg ->
           match cterm arg with
           | s -> s
           | exception Unbound v ->
             err
               "unsafe rule (head variable %s is not bound by the positive \
                body): %s"
               v text)
         head.Ast.args)
  in
  {
    cr_head = pred_of head;
    cr_head_src;
    cr_steps = Array.of_list (List.rev !steps);
    cr_nslots = !nslots;
    cr_text = text;
  }

(* ------------------------------------------------------------------ *)
(* Whole-program compilation                                          *)
(* ------------------------------------------------------------------ *)

let compile symtab (prog : Ast.program) =
  let pt =
    { ids = Hashtbl.create 32; names = []; ars = Hashtbl.create 32; n = 0 }
  in
  (* declarations first, so ids are stable and arities known *)
  List.iter
    (fun (d : Ast.decl) -> ignore (resolve_pred pt d.name d.arity : int))
    prog.decls;
  (* collect all atoms to assign remaining ids and check arities *)
  let atom_pred (a : Ast.atom) = resolve_pred pt a.pred (List.length a.args) in
  List.iter
    (fun (r : Ast.rule) ->
      ignore (atom_pred r.head : int);
      let rec visit lit =
        match lit with
        | Ast.Pos a | Ast.Neg a -> ignore (atom_pred a : int)
        | Ast.Cmp _ -> ()
        | Ast.Agg g -> List.iter visit g.Ast.agg_body
      in
      List.iter visit r.body)
    prog.rules;
  let npreds = pt.n in
  let pred_names = Array.of_list (List.rev pt.names) in
  let arities =
    Array.init npreds (fun id ->
        try Hashtbl.find pt.ars id with Not_found -> -1)
  in
  Array.iteri
    (fun i a ->
      if a < 0 then err "unknown arity for predicate %s" pred_names.(i))
    arities;
  let inputs = Array.make npreds false in
  let outputs = Array.make npreds false in
  List.iter
    (fun (d : Ast.decl) ->
      let id = Hashtbl.find pt.ids d.name in
      inputs.(id) <- d.is_input;
      outputs.(id) <- d.is_output)
    prog.decls;
  (* split facts from proper rules; fact arguments may be ground arithmetic *)
  let rec ground_value r = function
    | Ast.Int n -> n
    | Ast.Sym s -> Symtab.intern symtab s
    | Ast.Var v -> err "fact with variable %s: %s" v (rule_text r)
    | Ast.Add (a, b) -> ground_value r a + ground_value r b
    | Ast.Sub (a, b) -> ground_value r a - ground_value r b
    | Ast.Mul (a, b) -> ground_value r a * ground_value r b
  in
  let facts = ref [] and rules = ref [] in
  List.iter
    (fun (r : Ast.rule) ->
      if r.body = [] then begin
        let p = atom_pred r.head in
        let tup =
          Array.of_list (List.map (ground_value r) r.head.Ast.args)
        in
        facts := (p, tup) :: !facts
      end
      else rules := r :: !rules)
    prog.rules;
  let rules = List.rev !rules in
  (* stratification *)
  let edges =
    List.concat_map
      (fun (r : Ast.rule) ->
        let h = atom_pred r.head in
        let rec edges_of lit =
          match lit with
          | Ast.Pos a -> [ (h, atom_pred a, false) ]
          | Ast.Neg a -> [ (h, atom_pred a, true) ]
          | Ast.Cmp _ -> []
          | Ast.Agg g ->
            (* aggregated predicates must be complete before the aggregate
               is taken: stratify them like negated dependencies *)
            List.concat_map
              (fun inner ->
                List.map (fun (a, b, _) -> (a, b, true)) (edges_of inner))
              g.Ast.agg_body
        in
        List.concat_map edges_of r.body)
      rules
  in
  let strat = Stratify.compute ~npreds ~edges in
  let nstrata = Array.length strat.Stratify.strata in
  let seed_rules = Array.make nstrata [] in
  let delta_rules = Array.make nstrata [] in
  let sigs_full = Array.make npreds [] in
  let sigs_delta = Array.make npreds [] in
  let add_sigs cr =
    let rec visit stp =
      match stp with
      | SMatch m ->
        if Array.length m.m_sig > 0 then
          if m.m_delta then
            sigs_delta.(m.m_pred) <- m.m_sig :: sigs_delta.(m.m_pred)
          else sigs_full.(m.m_pred) <- m.m_sig :: sigs_full.(m.m_pred)
      | SAgg a -> Array.iter visit a.a_steps
      | SNeg _ | SCmp _ | SBind _ -> ()
    in
    Array.iter visit cr.cr_steps
  in
  List.iter
    (fun (r : Ast.rule) ->
      let h = atom_pred r.head in
      let s = strat.Stratify.stratum_of.(h) in
      let text = rule_text r in
      let seed =
        compile_order symtab ~pred_of:atom_pred ~head:r.head ~body:r.body
          ~delta_first:false ~text
      in
      add_sigs seed;
      seed_rules.(s) <- seed :: seed_rules.(s);
      (* delta variants: one per recursive positive literal, rotated to the
         front so the (small) delta drives the outer loop *)
      List.iteri
        (fun j lit ->
          match lit with
          | Ast.Pos a when strat.Stratify.stratum_of.(atom_pred a) = s ->
            let rotated = lit :: List.filteri (fun i _ -> i <> j) r.body in
            let v =
              compile_order symtab ~pred_of:atom_pred ~head:r.head
                ~body:rotated ~delta_first:true ~text
            in
            add_sigs v;
            delta_rules.(s) <- v :: delta_rules.(s)
          | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ | Ast.Agg _ -> ())
        r.body)
    rules;
  {
    npreds;
    pred_names;
    arities;
    inputs;
    outputs;
    strat;
    facts = List.rev !facts;
    seed_rules = Array.map List.rev seed_rules;
    delta_rules = Array.map List.rev delta_rules;
    sigs_full = Array.map (List.sort_uniq compare) sigs_full;
    sigs_delta = Array.map (List.sort_uniq compare) sigs_delta;
  }

let pred_id t name =
  let n = Array.length t.pred_names in
  let rec go i =
    if i = n then None
    else if t.pred_names.(i) = name then Some i
    else go (i + 1)
  in
  go 0
