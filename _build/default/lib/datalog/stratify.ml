exception Not_stratifiable of string

type t = { strata : int array array; stratum_of : int array }

(* Tarjan's strongly connected components; iterative would be needed for
   very deep graphs, but dependency graphs over predicates are shallow
   (hundreds of nodes), so the recursive formulation is fine. *)
let tarjan n succs =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs v);
    if lowlink.(v) = index.(v) then begin
      (* v is the root of an SCC: pop it *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* With successor edges v -> w meaning "v depends on w", Tarjan finishes
     (and emits) w's component before v's; prepending each emission and
     reversing therefore yields dependencies-first order — stratum 0 first. *)
  List.rev !sccs

let compute ~npreds ~edges =
  let succ = Array.make npreds [] in
  List.iter (fun (p, q, _) -> succ.(p) <- q :: succ.(p)) edges;
  let sccs = tarjan npreds (fun v -> succ.(v)) in
  let stratum_of = Array.make npreds (-1) in
  List.iteri (fun s comp -> List.iter (fun p -> stratum_of.(p) <- s) comp) sccs;
  (* reject negative edges within a stratum *)
  List.iter
    (fun (p, q, negated) ->
      if negated && stratum_of.(p) = stratum_of.(q) then
        raise
          (Not_stratifiable
             (Printf.sprintf
                "predicate %d depends negatively on predicate %d within the \
                 same recursive component"
                p q)))
    edges;
  (* sanity: every dependency must point to the same or an earlier stratum *)
  List.iter
    (fun (p, q, _) ->
      if stratum_of.(q) > stratum_of.(p) then
        invalid_arg "Stratify.compute: topological order violated")
    edges;
  { strata = Array.of_list (List.map Array.of_list sccs); stratum_of }
