(** Abstract syntax of the Datalog dialect (a core subset of Soufflé's).

    A program consists of relation declarations, facts and rules:
    {v
      .decl edge(x:number, y:number)
      .input edge
      .decl path(x:number, y:number)
      .output path
      path(x, y) :- edge(x, y).
      path(x, z) :- path(x, y), edge(y, z).
      edge(1, 2).
    v}
    Negation is written [!atom] and must be stratifiable. *)

type term =
  | Var of string      (** variable; ["_"] parses to a fresh wildcard *)
  | Int of int         (** numeric constant *)
  | Sym of string      (** quoted symbol constant, interned at compile time *)
  | Add of term * term (** arithmetic; must be ground when evaluated *)
  | Sub of term * term
  | Mul of term * term

type cmpop = Lt | Le | Gt | Ge | Eq | Ne
type agg_func = Count | Min | Max | Sum

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of cmpop * term * term
      (** constraint, e.g. [x < y + 1].  [Eq] with an unbound variable on
          one side acts as an assignment (Souffle-style [x = e]). *)
  | Agg of aggregate
      (** aggregate, e.g. [n = count : { edge(x, y) }] or
          [m = max d : { dist(x, y, d) }].  The aggregated predicates must
          live in a strictly lower stratum, like negated ones. *)

and aggregate = {
  agg_result : string;      (** the variable receiving the aggregate *)
  agg_func : agg_func;
  agg_arg : term option;    (** the aggregated expression; [None] for count *)
  agg_body : literal list;  (** positive atoms and constraints only *)
}

type rule = { head : atom; body : literal list }
(** A fact is a rule with an empty body and a ground head. *)

type decl = {
  name : string;
  arity : int;
  is_input : bool;
  is_output : bool;
}

type program = { decls : decl list; rules : rule list }

val pp_term : Format.formatter -> term -> unit
val pp_literal : Format.formatter -> literal -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp_rule : Format.formatter -> rule -> unit
val pp_program : Format.formatter -> program -> unit

val fact : string -> int list -> rule
(** [fact p args] is the ground fact [p(args).] — convenience for workload
    generators that build programs without parsing. *)

val rule : atom -> literal list -> rule
val atom : string -> term list -> atom
