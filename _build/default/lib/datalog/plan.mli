(** Rule compilation: from the checked AST to executable join plans.

    Each rule body becomes a sequence of steps executed as nested loops
    (the paper's Fig. 1 loop nest, generalised):

    - a {e match} step scans the tuples of a relation whose {e bound}
      columns (constants and variables bound by earlier steps) equal the
      current environment's values — realised as an index range scan —
      binding the free columns into environment slots;
    - a {e negation} step checks that a fully bound tuple is absent.

    For semi-naive evaluation every rule is compiled several times: a seed
    version (all literals read the full relations) and, per recursive body
    literal, a delta variant in which that literal reads the delta relation
    and is rotated to the front — making the delta the outer, parallelised
    loop, as in the paper's parallelisation of Fig. 1. *)

exception Compile_error of string

type src =
  | Const of int
  | Slot of int
  | SAdd of src * src  (** arithmetic over already-bound sources *)
  | SSub of src * src
  | SMul of src * src

type match_step = {
  m_pred : int;
  m_delta : bool;           (** read the delta version of the relation *)
  m_sig : int array;        (** bound columns, strictly increasing *)
  m_bound : src array;      (** value sources for [m_sig], same order *)
  m_checks : (int * src) array;
      (** within-literal equalities: column must equal the source's value
          (evaluated after this step's binds) *)
  m_binds : (int * int) array; (** (column, slot) pairs to bind *)
}

type step =
  | SMatch of match_step
  | SNeg of { n_pred : int; n_bound : src array } (** absence check *)
  | SCmp of { c_op : Ast.cmpop; c_lhs : src; c_rhs : src }
      (** constraint over bound sources *)
  | SBind of { b_slot : int; b_src : src }
      (** assignment [x = e] binding a fresh slot *)
  | SAgg of agg_step
      (** aggregate: fold the inner sub-plan, bind (or check) the result *)

and agg_step = {
  a_func : Ast.agg_func;
  a_arg : src option;   (** aggregated expression; [None] for count *)
  a_slot : int;         (** slot receiving the result; [-1] = check instead *)
  a_check : src option; (** when the result variable was already bound *)
  a_steps : step array; (** inner body; reads full relations only *)
}

type crule = {
  cr_head : int;
  cr_head_src : src array;
  cr_steps : step array;
  cr_nslots : int;
  cr_text : string; (** pretty-printed source rule, for diagnostics *)
}

type t = {
  npreds : int;
  pred_names : string array;
  arities : int array;
  inputs : bool array;
  outputs : bool array;
  strat : Stratify.t;
  facts : (int * int array) list;
  seed_rules : crule list array;  (** per stratum *)
  delta_rules : crule list array; (** per stratum *)
  sigs_full : int array list array;  (** per predicate *)
  sigs_delta : int array list array; (** per predicate *)
}

val compile : Symtab.t -> Ast.program -> t
(** Resolves names, checks arities and rule safety (head and negation
    variables bound by the positive body, in order), stratifies, and plans
    all rule versions.  Symbol constants are interned into [symtab].
    @raise Compile_error on any static error
    @raise Stratify.Not_stratifiable on negative recursion *)

val pred_id : t -> string -> int option
