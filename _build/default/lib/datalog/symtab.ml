type t = { by_name : (string, int) Hashtbl.t; mutable by_id : string array; mutable next : int }

let create () = { by_name = Hashtbl.create 64; by_id = Array.make 64 ""; next = 0 }

let intern t s =
  match Hashtbl.find_opt t.by_name s with
  | Some id -> id
  | None ->
    let id = t.next in
    t.next <- id + 1;
    Hashtbl.add t.by_name s id;
    if id >= Array.length t.by_id then begin
      let bigger = Array.make (2 * Array.length t.by_id) "" in
      Array.blit t.by_id 0 bigger 0 (Array.length t.by_id);
      t.by_id <- bigger
    end;
    t.by_id.(id) <- s;
    id

let find_opt t s = Hashtbl.find_opt t.by_name s

let name t id =
  if id < 0 || id >= t.next then raise Not_found else t.by_id.(id)

let size t = t.next
