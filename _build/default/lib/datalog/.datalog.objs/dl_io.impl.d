lib/datalog/dl_io.ml: Array Engine Filename List Printf String Sys
