lib/datalog/naive.ml: Array Ast Hashtbl Key List Set Stratify Symtab
