lib/datalog/parser.ml: Ast Buffer Hashtbl List Option Printf String
