lib/datalog/index_selection.ml: Array Int List Set
