lib/datalog/dl_stats.mli: Atomic Format
