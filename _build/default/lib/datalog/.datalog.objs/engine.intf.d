lib/datalog/engine.mli: Ast Dl_stats Eval Pool Storage
