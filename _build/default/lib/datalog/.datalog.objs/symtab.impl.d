lib/datalog/symtab.ml: Array Hashtbl
