lib/datalog/naive.mli: Ast Hashtbl
