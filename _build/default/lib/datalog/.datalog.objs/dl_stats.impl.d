lib/datalog/dl_stats.ml: Atomic Format
