lib/datalog/plan.mli: Ast Stratify Symtab
