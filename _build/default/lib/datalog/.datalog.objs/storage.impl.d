lib/datalog/storage.ml: Array Atomic Bplus_tree Btree_tuples Concurrent_hashset Dl_stats Hashset Hashtbl Key List Olock Printf Rbtree Stdlib String
