lib/datalog/symtab.mli:
