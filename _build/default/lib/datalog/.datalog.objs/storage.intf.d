lib/datalog/storage.mli: Dl_stats
