lib/datalog/engine.ml: Array Dl_stats Eval List Option Plan Printf Relation Storage Symtab
