lib/datalog/relation.mli: Dl_stats Storage
