lib/datalog/stratify.mli:
