lib/datalog/index_selection.mli:
