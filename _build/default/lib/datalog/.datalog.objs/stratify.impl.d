lib/datalog/stratify.ml: Array List Printf
