lib/datalog/dl_io.mli: Engine
