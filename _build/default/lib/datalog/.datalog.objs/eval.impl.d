lib/datalog/eval.ml: Array Ast Atomic Dl_stats List Option Plan Pool Printf Relation Storage Stratify Unix
