lib/datalog/eval.mli: Dl_stats Plan Pool Relation Storage
