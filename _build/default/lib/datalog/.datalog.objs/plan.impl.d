lib/datalog/plan.ml: Array Ast Format Hashtbl List Printf Stratify Symtab
