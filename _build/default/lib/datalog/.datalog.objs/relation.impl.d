lib/datalog/relation.ml: Array Atomic Dl_stats Index_selection List Mutex Printf Storage
