type t = {
  inserts : int Atomic.t;
  mem_tests : int Atomic.t;
  lower_bounds : int Atomic.t;
  upper_bounds : int Atomic.t;
  input_tuples : int Atomic.t;
  produced_tuples : int Atomic.t;
}

let create () =
  {
    inserts = Atomic.make 0;
    mem_tests = Atomic.make 0;
    lower_bounds = Atomic.make 0;
    upper_bounds = Atomic.make 0;
    input_tuples = Atomic.make 0;
    produced_tuples = Atomic.make 0;
  }

let reset t =
  Atomic.set t.inserts 0;
  Atomic.set t.mem_tests 0;
  Atomic.set t.lower_bounds 0;
  Atomic.set t.upper_bounds 0;
  Atomic.set t.input_tuples 0;
  Atomic.set t.produced_tuples 0

type snapshot = {
  s_inserts : int;
  s_mem_tests : int;
  s_lower_bounds : int;
  s_upper_bounds : int;
  s_input_tuples : int;
  s_produced_tuples : int;
}

let snapshot t =
  {
    s_inserts = Atomic.get t.inserts;
    s_mem_tests = Atomic.get t.mem_tests;
    s_lower_bounds = Atomic.get t.lower_bounds;
    s_upper_bounds = Atomic.get t.upper_bounds;
    s_input_tuples = Atomic.get t.input_tuples;
    s_produced_tuples = Atomic.get t.produced_tuples;
  }

let pp fmt s =
  Format.fprintf fmt
    "inserts=%.1e mem=%.1e lower_bound=%.1e upper_bound=%.1e input=%.1e \
     produced=%.1e"
    (float_of_int s.s_inserts)
    (float_of_int s.s_mem_tests)
    (float_of_int s.s_lower_bounds)
    (float_of_int s.s_upper_bounds)
    (float_of_int s.s_input_tuples)
    (float_of_int s.s_produced_tuples)
