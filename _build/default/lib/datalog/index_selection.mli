(** Minimal index selection (the paper's companion technique, cited as
    "Optimal On The Fly Index Selection in Polynomial Time" [29]).

    A join literal whose bound column set is [S] can be answered by any
    index whose column order starts with the elements of [S] (in any
    permutation): the bound columns form a prefix, so the matching tuples
    are contiguous.  Consequently two signatures [S ⊂ T] can share a single
    index ordered [elements of S ++ elements of T\S ++ rest] — and, in
    general, every {e chain} in the subset partial order needs only one
    index.  The minimal number of indexes for a relation is therefore the
    minimum chain cover of its signature set, computed here exactly via
    maximum bipartite matching (Dilworth / König), as in the cited paper.

    The result maps each signature to the index ordering that serves it. *)

type plan = {
  orders : int array list;
      (** one index ordering (a column permutation prefix, possibly partial —
          extend with the remaining columns for a total order) per chain *)
  assignment : (int array * int) list;
      (** signature (sorted ascending) -> position of its index in [orders] *)
}

val solve : arity:int -> int array list -> plan
(** [solve ~arity sigs] computes a minimum chain cover of the given
    signatures (each a strictly increasing column array).  Signatures may
    repeat; duplicates share the same assignment.  The empty signature is
    ignored (the primary index always exists).

    Each returned order lists the columns of the chain's smallest signature
    first, then the increments along the chain, then any remaining columns
    of the relation — so for every signature assigned to it, the
    signature's columns form a prefix of the order. *)

val chains_lower_bound : int array list -> int
(** Size of the largest antichain in the signature set (by brute force over
    the distinct signatures; they are few).  By Dilworth's theorem the
    minimum chain cover has exactly this size — exposed for tests. *)
