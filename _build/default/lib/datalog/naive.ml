module TupleSet = Set.Make (struct
  type t = int array

  let compare = Key.Int_array.compare
end)


let rec term_value symtab env = function
  | Ast.Int n -> Some n
  | Ast.Sym s -> Some (Symtab.intern symtab s)
  | Ast.Var v -> List.assoc_opt v env
  | Ast.Add (a, b) -> arith symtab env ( + ) a b
  | Ast.Sub (a, b) -> arith symtab env ( - ) a b
  | Ast.Mul (a, b) -> arith symtab env ( * ) a b

and arith symtab env op a b =
  match (term_value symtab env a, term_value symtab env b) with
  | Some x, Some y -> Some (op x y)
  | _ -> None

let cmp_holds op x y =
  match op with
  | Ast.Lt -> x < y
  | Ast.Le -> x <= y
  | Ast.Gt -> x > y
  | Ast.Ge -> x >= y
  | Ast.Eq -> x = y
  | Ast.Ne -> x <> y

let run (prog : Ast.program) ~extra_facts =
  let symtab = Symtab.create () in
  (* predicate ids for stratification only *)
  let ids = Hashtbl.create 16 in
  let next = ref 0 in
  let id_of name =
    match Hashtbl.find_opt ids name with
    | Some i -> i
    | None ->
      let i = !next in
      incr next;
      Hashtbl.add ids name i;
      i
  in
  List.iter (fun (d : Ast.decl) -> ignore (id_of d.name : int)) prog.decls;
  List.iter
    (fun (r : Ast.rule) ->
      ignore (id_of r.head.Ast.pred : int);
      let rec visit l =
        match l with
        | Ast.Pos a | Ast.Neg a -> ignore (id_of a.Ast.pred : int)
        | Ast.Cmp _ -> ()
        | Ast.Agg g -> List.iter visit g.Ast.agg_body
      in
      List.iter visit r.body)
    prog.rules;
  let edges =
    List.concat_map
      (fun (r : Ast.rule) ->
        if r.body = [] then []
        else
          let h = id_of r.head.Ast.pred in
          let rec edges_of l =
            match l with
            | Ast.Pos a -> [ (h, id_of a.Ast.pred, false) ]
            | Ast.Neg a -> [ (h, id_of a.Ast.pred, true) ]
            | Ast.Cmp _ -> []
            | Ast.Agg g ->
              (* aggregated predicates behave like negated ones: they must
                 be complete before the aggregate is taken *)
              List.concat_map
                (fun inner ->
                  List.map (fun (a, b, _) -> (a, b, true)) (edges_of inner))
                g.Ast.agg_body
          in
          List.concat_map edges_of r.body)
      prog.rules
  in
  let strat = Stratify.compute ~npreds:!next ~edges in
  let stratum_of_pred name = strat.Stratify.stratum_of.(id_of name) in
  (* data *)
  let data : (string, TupleSet.t ref) Hashtbl.t = Hashtbl.create 16 in
  let rel name =
    match Hashtbl.find_opt data name with
    | Some r -> r
    | None ->
      let r = ref TupleSet.empty in
      Hashtbl.add data name r;
      r
  in
  let add name tup =
    let r = rel name in
    if TupleSet.mem tup !r then false
    else begin
      r := TupleSet.add tup !r;
      true
    end
  in
  (* facts *)
  List.iter
    (fun (r : Ast.rule) ->
      if r.body = [] then begin
        let tup =
          Array.of_list
            (List.map
               (fun a ->
                 match term_value symtab [] a with
                 | Some v -> v
                 | None -> failwith "naive: fact with variable")
               r.head.Ast.args)
        in
        ignore (add r.head.Ast.pred tup : bool)
      end)
    prog.rules;
  List.iter (fun (name, tup) -> ignore (add name tup : bool)) extra_facts;
  (* brute-force joins *)
  let match_atom env (a : Ast.atom) (tup : int array) =
    let rec go env i = function
      | [] -> Some env
      | arg :: rest -> (
        match term_value symtab env arg with
        | Some v -> if tup.(i) = v then go env (i + 1) rest else None
        | None -> (
          match arg with
          | Ast.Var v -> go ((v, tup.(i)) :: env) (i + 1) rest
          | _ -> None))
    in
    go env 0 a.Ast.args
  in
  let eval_rule (r : Ast.rule) =
    let changed = ref false in
    let rec go env = function
      | [] ->
        let tup =
          Array.of_list
            (List.map
               (fun a ->
                 match term_value symtab env a with
                 | Some v -> v
                 | None -> failwith "naive: unsafe head")
               r.head.Ast.args)
        in
        if add r.head.Ast.pred tup then changed := true
      | Ast.Pos a :: rest ->
        TupleSet.iter
          (fun tup ->
            match match_atom env a tup with
            | Some env -> go env rest
            | None -> ())
          !(rel a.Ast.pred)
      | Ast.Neg a :: rest ->
        let tup =
          Array.of_list
            (List.map
               (fun arg ->
                 match term_value symtab env arg with
                 | Some v -> v
                 | None -> failwith "naive: unsafe negation")
               a.Ast.args)
        in
        if not (TupleSet.mem tup !(rel a.Ast.pred)) then go env rest
      | Ast.Cmp (op, a, b) :: rest -> (
        match (term_value symtab env a, term_value symtab env b) with
        | Some x, Some y -> if cmp_holds op x y then go env rest
        | None, Some y -> (
          (* assignment form: x = e *)
          match (op, a) with
          | Ast.Eq, Ast.Var v -> go ((v, y) :: env) rest
          | _ -> failwith "naive: unsafe comparison")
        | Some x, None -> (
          match (op, b) with
          | Ast.Eq, Ast.Var v -> go ((v, x) :: env) rest
          | _ -> failwith "naive: unsafe comparison")
        | None, None -> failwith "naive: unsafe comparison")
      | Ast.Agg g :: rest ->
        (* enumerate the inner body with the outer bindings visible and
           fold the aggregate; inner bindings stay scoped to the body *)
        let acc = ref [] in
        let rec inner env = function
          | [] ->
            let v =
              match g.Ast.agg_arg with
              | None -> 0
              | Some t -> (
                match term_value symtab env t with
                | Some v -> v
                | None -> failwith "naive: unbound aggregate argument")
            in
            acc := v :: !acc
          | Ast.Pos a :: irest ->
            TupleSet.iter
              (fun tup ->
                match match_atom env a tup with
                | Some env -> inner env irest
                | None -> ())
              !(rel a.Ast.pred)
          | Ast.Cmp (op, a, b) :: irest -> (
            match (term_value symtab env a, term_value symtab env b) with
            | Some x, Some y -> if cmp_holds op x y then inner env irest
            | None, Some y -> (
              match (op, a) with
              | Ast.Eq, Ast.Var v -> inner ((v, y) :: env) irest
              | _ -> failwith "naive: unsafe comparison in aggregate")
            | Some x, None -> (
              match (op, b) with
              | Ast.Eq, Ast.Var v -> inner ((v, x) :: env) irest
              | _ -> failwith "naive: unsafe comparison in aggregate")
            | None, None -> failwith "naive: unsafe comparison in aggregate")
          | (Ast.Neg _ | Ast.Agg _) :: _ ->
            failwith "naive: unsupported literal inside aggregate"
        in
        inner env g.Ast.agg_body;
        let result =
          match (g.Ast.agg_func, !acc) with
          | Ast.Count, l -> Some (List.length l)
          | Ast.Sum, l -> Some (List.fold_left ( + ) 0 l)
          | (Ast.Min | Ast.Max), [] -> None (* no match: rule does not fire *)
          | Ast.Min, l -> Some (List.fold_left min max_int l)
          | Ast.Max, l -> Some (List.fold_left max min_int l)
        in
        (match result with
        | None -> ()
        | Some v -> (
          match List.assoc_opt g.Ast.agg_result env with
          | Some bound -> if bound = v then go env rest
          | None -> go ((g.Ast.agg_result, v) :: env) rest))
    in
    go [] r.body;
    !changed
  in
  let nstrata = Array.length strat.Stratify.strata in
  for s = 0 to nstrata - 1 do
    let stratum_rules =
      List.filter
        (fun (r : Ast.rule) ->
          r.body <> [] && stratum_of_pred r.head.Ast.pred = s)
        prog.rules
    in
    if stratum_rules <> [] then begin
      let continue = ref true in
      while !continue do
        continue := false;
        List.iter (fun r -> if eval_rule r then continue := true) stratum_rules
      done
    end
  done;
  let out = Hashtbl.create 16 in
  Hashtbl.iter (fun name set -> Hashtbl.replace out name (TupleSet.elements !set)) data;
  out
