(* Minimum chain cover over the subset order of index signatures.

   Distinct signatures form a partial order under set containment; by
   Dilworth's theorem the minimum number of chains covering them equals the
   maximum antichain, and for a transitively closed DAG the cover is
   computed as |V| - M where M is a maximum bipartite matching between
   copies of the vertex set with an edge (u, v) whenever u ⊂ v (König).
   Signature sets are tiny (a handful per relation), so Kuhn's augmenting
   path algorithm is plenty. *)

module IntSet = Set.Make (Int)

type plan = {
  orders : int array list;
  assignment : (int array * int) list;
}

let set_of_sig s = IntSet.of_list (Array.to_list s)

let solve ~arity sigs =
  ignore arity;
  let distinct =
    List.sort_uniq compare
      (List.filter (fun s -> Array.length s > 0) (List.map Array.copy sigs))
  in
  let n = List.length distinct in
  let arr = Array.of_list distinct in
  let sets = Array.map set_of_sig arr in
  let subset i j = i <> j && IntSet.subset sets.(i) sets.(j) in
  (* Kuhn's matching: match_to.(j) = i means i is followed by j in a chain *)
  let match_to = Array.make n (-1) in
  let rec try_augment visited i =
    let found = ref false in
    let j = ref 0 in
    while (not !found) && !j < n do
      if subset i !j && not visited.(!j) then begin
        visited.(!j) <- true;
        if match_to.(!j) = -1 || try_augment visited match_to.(!j) then begin
          match_to.(!j) <- i;
          found := true
        end
      end;
      incr j
    done;
    !found
  in
  for i = 0 to n - 1 do
    ignore (try_augment (Array.make n false) i : bool)
  done;
  (* successor links: succ.(i) = j when i -> j is matched *)
  let succ = Array.make n (-1) in
  let has_pred = Array.make n false in
  Array.iteri
    (fun j i ->
      if i >= 0 then begin
        succ.(i) <- j;
        has_pred.(j) <- true
      end)
    match_to;
  (* build chains from the heads (no predecessor) *)
  let chains = ref [] in
  for i = 0 to n - 1 do
    if not has_pred.(i) then begin
      let rec collect k acc = if k = -1 then List.rev acc else collect succ.(k) (k :: acc) in
      chains := collect i [] :: !chains
    end
  done;
  let chains = List.rev !chains in
  (* order for a chain: smallest signature's columns (ascending), then each
     increment along the chain (ascending within the increment) *)
  let order_of_chain chain =
    let buf = ref [] and seen = ref IntSet.empty in
    List.iter
      (fun i ->
        let added = IntSet.diff sets.(i) !seen in
        IntSet.iter (fun c -> buf := c :: !buf) added;
        seen := IntSet.union !seen sets.(i))
      chain;
    Array.of_list (List.rev !buf)
  in
  let orders = List.map order_of_chain chains in
  let assignment =
    List.concat
      (List.mapi
         (fun chain_idx chain ->
           List.map (fun i -> (arr.(i), chain_idx)) chain)
         chains)
  in
  { orders; assignment }

let chains_lower_bound sigs =
  let distinct =
    List.sort_uniq compare (List.filter (fun s -> Array.length s > 0) sigs)
  in
  let sets = Array.of_list (List.map set_of_sig distinct) in
  let n = Array.length sets in
  let comparable i j =
    IntSet.subset sets.(i) sets.(j) || IntSet.subset sets.(j) sets.(i)
  in
  (* brute-force maximum antichain (n is tiny) *)
  let best = ref 0 in
  let rec go i chosen count =
    if i = n then best := max !best count
    else begin
      (* skip *)
      go (i + 1) chosen count;
      (* take, if independent of all chosen *)
      if List.for_all (fun j -> not (comparable i j)) chosen then
        go (i + 1) (i :: chosen) (count + 1)
    end
  in
  go 0 [] 0;
  !best
