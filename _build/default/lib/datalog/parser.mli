(** Hand-written lexer and recursive-descent parser for the Datalog dialect
    described in {!Ast}. *)

exception Syntax_error of { line : int; col : int; message : string }

val parse_string : ?filename:string -> string -> Ast.program
(** @raise Syntax_error with position information on malformed input. *)

val parse_file : string -> Ast.program
(** Reads and parses a whole file.  @raise Sys_error on IO failure. *)
