(** Reference evaluator: naive bottom-up fixed point with brute-force joins
    and no indexes, deltas or parallelism.  Deliberately written without any
    machinery shared with {!Eval} so the two can be tested differentially on
    random programs. *)

val run :
  Ast.program -> extra_facts:(string * int array) list -> (string, int array list) Hashtbl.t
(** Returns every relation's final contents (sorted).  Symbol constants are
    interned in first-occurrence order (matching {!Engine.create} followed by
    {!Engine.add_fact} in the same order, for programs whose symbols appear
    in rule text before facts).
    @raise Stratify.Not_stratifiable on negative recursion
    @raise Failure on unsafe rules *)
