lib/alttrees/bslack_tree.mli: Key
