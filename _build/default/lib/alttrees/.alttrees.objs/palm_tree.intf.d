lib/alttrees/palm_tree.mli: Key
