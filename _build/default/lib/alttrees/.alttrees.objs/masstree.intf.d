lib/alttrees/masstree.mli: Key
