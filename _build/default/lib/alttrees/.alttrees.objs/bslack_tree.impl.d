lib/alttrees/bslack_tree.ml: Array Key List Olock Printf
