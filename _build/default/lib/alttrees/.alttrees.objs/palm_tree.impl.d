lib/alttrees/palm_tree.ml: Array Bplus_tree Key Olock
