lib/alttrees/masstree.ml: Array Key List Olock Printf
