(** Simplified Masstree (Mao et al., EuroSys'12) for the Table 3 comparison.

    Masstree is a trie of B+-trees over 8-byte key segments with optimistic
    per-node version locks.  For the fixed-width integer keys of Table 3 the
    trie collapses to a single layer, so this reproduction is that layer: a
    concurrent B+-tree with per-node optimistic version locks, optimistic
    reads validated against node versions, and a pessimistic top-down
    lock-coupling descent (with preemptive splits) when an insert needs to
    restructure.  No operation hints, no two-phase specialisation — i.e. a
    good {e generic} concurrent ordered set, which is exactly the role it
    plays against the specialized B-tree.

    The original's client/server architecture and persistence layer are out
    of scope (see DESIGN.md). *)

module Make (K : Key.ORDERED) : sig
  type key = K.t
  type t

  val create : ?node_capacity:int -> unit -> t

  val insert : t -> key -> bool
  (** Thread-safe; [true] iff the key was absent. *)

  val mem : t -> key -> bool
  (** Thread-safe, including against concurrent inserts (validated
      optimistic reads). *)

  val cardinal : t -> int
  (** Quiescent use. *)

  val iter : (key -> unit) -> t -> unit
  (** In-order; quiescent use. *)

  val to_list : t -> key list
  val check_invariants : t -> unit
end
