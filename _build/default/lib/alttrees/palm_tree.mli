(** Simplified PALM tree (Sewall et al., VLDB'11) for the Table 3 comparison.

    PALM is a latch-free B+-tree that synchronises by {e batching}: client
    operations are queued and the structure processes whole batches in bulk
    synchronous rounds (sort the batch, group by target leaf, apply, resolve
    splits level by level).  This reproduction keeps the architectural
    signature that determines its point-insert behaviour — a shared
    submission queue and per-batch sort/group/apply phases — while applying
    batches with a single coordinator thread (the original distributes leaf
    groups over workers with SIMD; see DESIGN.md for the substitution note).

    The consequence the paper's Table 3 shows — two orders of magnitude
    lower point-insert throughput than the specialized B-tree, and near-zero
    scaling — comes from the batching round-trips, which this model
    preserves. *)

module Make (K : Key.ORDERED) : sig
  type key = K.t
  type t

  val create : ?batch_size:int -> ?node_capacity:int -> unit -> t
  (** @param batch_size operations buffered per round (default 4096). *)

  val insert : t -> key -> unit
  (** Thread-safe.  Enqueues the key; flushes a full batch inline.  As in
      PALM, results materialise when the batch is applied (duplicates are
      resolved by the batch sort), so no freshness result is returned. *)

  val flush : t -> unit
  (** Apply all buffered operations.  Thread-safe. *)

  val mem : t -> key -> bool
  (** Thread-safe; flushes pending operations first (queries travel through
      batches in PALM). *)

  val cardinal : t -> int
  val iter : (key -> unit) -> t -> unit
  (** Quiescent use: flushes, then iterates. *)

  val check_invariants : t -> unit
end
