(* Relaxed-fill B+-tree: on leaf overflow, shed a key to the left or right
   sibling when possible (adjusting the parent separator); split only when
   both siblings are full.  Node key arrays reserve one slack slot so the
   overflowing key can be placed before rebalancing. *)

module Make (K : Key.ORDERED) = struct
  type key = K.t

  type node = {
    keys : key array; (* length capacity + 1: one slot of slack *)
    mutable nkeys : int;
    children : node array; (* [||] = leaf; length capacity + 2 otherwise *)
  }

  type t = {
    lock : Olock.Spin.t;
    capacity : int;
    mutable root : node option;
    mutable count : int;
  }

  let create ?(node_capacity = 32) () =
    if node_capacity < 4 then
      invalid_arg "Bslack_tree.create: node_capacity must be >= 4";
    { lock = Olock.Spin.create (); capacity = node_capacity; root = None; count = 0 }

  let alloc_leaf t =
    { keys = Array.make (t.capacity + 1) K.dummy; nkeys = 0; children = [||] }

  let dummy_node = { keys = [||]; nkeys = 0; children = [||] }

  let alloc_inner t =
    {
      keys = Array.make (t.capacity + 1) K.dummy;
      nkeys = 0;
      children = Array.make (t.capacity + 2) dummy_node;
    }

  let is_leaf n = Array.length n.children = 0

  let lower_idx keys n key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare (Array.unsafe_get keys mid) key < 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  let upper_idx keys n key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare (Array.unsafe_get keys mid) key <= 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  (* ---- overflow resolution (caller holds the lock) ---- *)

  (* Move one key from the overflowing leaf [c] (child [ci] of [p]) to its
     left sibling; separator between them becomes [c]'s new minimum. *)
  let shed_left p ci c =
    let l = p.children.(ci - 1) in
    l.keys.(l.nkeys) <- c.keys.(0);
    l.nkeys <- l.nkeys + 1;
    Array.blit c.keys 1 c.keys 0 (c.nkeys - 1);
    c.nkeys <- c.nkeys - 1;
    p.keys.(ci - 1) <- c.keys.(0)

  (* Move one key from the overflowing leaf [c] to its right sibling. *)
  let shed_right p ci c =
    let r = p.children.(ci + 1) in
    let k = c.keys.(c.nkeys - 1) in
    Array.blit r.keys 0 r.keys 1 r.nkeys;
    r.keys.(0) <- k;
    r.nkeys <- r.nkeys + 1;
    c.nkeys <- c.nkeys - 1;
    p.keys.(ci) <- k

  (* Split child [ci] of [p]; [p] has a slack slot so this cannot fail.
     Returns whether [p] itself is now overflowing. *)
  let split_child p ci c =
    let half = (c.nkeys + 1) / 2 in
    let right =
      if is_leaf c then
        { keys = Array.make (Array.length c.keys) c.keys.(0); nkeys = 0; children = [||] }
      else
        {
          keys = Array.make (Array.length c.keys) c.keys.(0);
          nkeys = 0;
          children = Array.make (Array.length c.children) dummy_node;
        }
    in
    let sep =
      if is_leaf c then begin
        let rcount = c.nkeys - half in
        Array.blit c.keys half right.keys 0 rcount;
        right.nkeys <- rcount;
        c.nkeys <- half;
        right.keys.(0)
      end
      else begin
        let s = c.keys.(half) in
        let rcount = c.nkeys - half - 1 in
        Array.blit c.keys (half + 1) right.keys 0 rcount;
        Array.blit c.children (half + 1) right.children 0 (rcount + 1);
        right.nkeys <- rcount;
        c.nkeys <- half;
        s
      end
    in
    let n = p.nkeys in
    Array.blit p.keys ci p.keys (ci + 1) (n - ci);
    p.keys.(ci) <- sep;
    Array.blit p.children (ci + 1) p.children (ci + 2) (n - ci);
    p.children.(ci + 1) <- right;
    p.nkeys <- n + 1

  let insert_locked t key =
    (match t.root with
    | None -> t.root <- Some (alloc_leaf t)
    | Some _ -> ());
    let root = match t.root with Some r -> r | None -> assert false in
    (* descend recording the path *)
    let path = ref [] in
    let rec descend node =
      if is_leaf node then node
      else begin
        let ci = upper_idx node.keys node.nkeys key in
        path := (node, ci) :: !path;
        descend node.children.(ci)
      end
    in
    let leaf = descend root in
    let i = lower_idx leaf.keys leaf.nkeys key in
    if i < leaf.nkeys && K.compare leaf.keys.(i) key = 0 then false
    else begin
      Array.blit leaf.keys i leaf.keys (i + 1) (leaf.nkeys - i);
      leaf.keys.(i) <- key;
      leaf.nkeys <- leaf.nkeys + 1;
      t.count <- t.count + 1;
      (* resolve overflow bottom-up *)
      let rec fix node path =
        if node.nkeys > t.capacity then
          match path with
          | [] ->
            (* root overflow: grow the tree *)
            let nr = alloc_inner t in
            nr.children.(0) <- node;
            split_child nr 0 node;
            t.root <- Some nr
          | (p, ci) :: rest ->
            (* slack rebalancing only at the leaf level, where it pays for
               itself in fill grade; inner overflow splits directly *)
            if
              is_leaf node && ci > 0
              && p.children.(ci - 1).nkeys < t.capacity
            then shed_left p ci node
            else if
              is_leaf node && ci < p.nkeys
              && p.children.(ci + 1).nkeys < t.capacity
            then shed_right p ci node
            else begin
              split_child p ci node;
              fix p rest
            end
      in
      fix leaf !path;
      true
    end

  let insert t key = Olock.Spin.with_lock t.lock (fun () -> insert_locked t key)

  let mem_unlocked t key =
    match t.root with
    | None -> false
    | Some root ->
      let rec go node =
        if is_leaf node then
          let i = lower_idx node.keys node.nkeys key in
          i < node.nkeys && K.compare node.keys.(i) key = 0
        else go node.children.(upper_idx node.keys node.nkeys key)
      in
      go root

  let mem t key = Olock.Spin.with_lock t.lock (fun () -> mem_unlocked t key)
  let cardinal t = t.count

  let iter f t =
    match t.root with
    | None -> ()
    | Some root ->
      let rec go node =
        if is_leaf node then
          for i = 0 to node.nkeys - 1 do
            f node.keys.(i)
          done
        else
          for i = 0 to node.nkeys do
            go node.children.(i)
          done
      in
      go root

  let to_list t =
    let acc = ref [] in
    iter (fun k -> acc := k :: !acc) t;
    List.rev !acc

  let fill_grade t =
    match t.root with
    | None -> 0.0
    | Some root ->
      let elems = ref 0 and slots = ref 0 in
      let rec go node =
        if is_leaf node then begin
          elems := !elems + node.nkeys;
          slots := !slots + t.capacity
        end
        else
          for i = 0 to node.nkeys do
            go node.children.(i)
          done
      in
      go root;
      if !slots = 0 then 0.0 else float_of_int !elems /. float_of_int !slots

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    match t.root with
    | None -> if t.count <> 0 then fail "empty tree, count %d" t.count
    | Some root ->
      let leaf_depth = ref (-1) in
      let rec go node depth lo hi =
        let n = node.nkeys in
        if n > t.capacity then fail "overflow survived";
        for i = 0 to n - 2 do
          if K.compare node.keys.(i) node.keys.(i + 1) >= 0 then
            fail "keys out of order"
        done;
        if n > 0 then begin
          (match lo with
          | Some b -> if K.compare node.keys.(0) b < 0 then fail "lo violated"
          | None -> ());
          match hi with
          | Some b ->
            if K.compare node.keys.(n - 1) b >= 0 then fail "hi violated"
          | None -> ()
        end;
        if is_leaf node then begin
          if !leaf_depth = -1 then leaf_depth := depth
          else if !leaf_depth <> depth then fail "leaves at different depths"
        end
        else begin
          if n = 0 then fail "inner without separators";
          for i = 0 to n do
            let lo = if i = 0 then lo else Some node.keys.(i - 1) in
            let hi = if i = n then hi else Some node.keys.(i) in
            go node.children.(i) (depth + 1) lo hi
          done
        end
      in
      go root 0 None None;
      let n = ref 0 and prev = ref None in
      iter
        (fun k ->
          incr n;
          (match !prev with
          | Some p -> if K.compare p k >= 0 then fail "iteration out of order"
          | None -> ());
          prev := Some k)
        t;
      if !n <> t.count then fail "count %d <> enumerated %d" t.count !n
end
