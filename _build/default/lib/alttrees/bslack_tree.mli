(** Simplified B-slack tree (Brown, SWAT'14) for the Table 3 comparison.

    B-slack trees constrain the total slack (unused key slots) across the
    children of every node, yielding better worst-case space usage than
    plain B-trees at the cost of extra rebalancing work on insertion.  This
    reproduction models that trade-off with a B+-tree that, on leaf
    overflow, first tries to shed keys to a sibling (updating the parent
    separator) and only splits when both siblings are full — raising fill
    grade and slowing inserts, which is the behaviour Table 3 measures.

    The original does not specify a locking scheme for concurrent use (as
    the paper notes in section 4.4), so thread safety here is provided by a
    single internal lock; parallel scalability is accordingly modest. *)

module Make (K : Key.ORDERED) : sig
  type key = K.t
  type t

  val create : ?node_capacity:int -> unit -> t

  val insert : t -> key -> bool
  (** Thread-safe (internally serialised). *)

  val mem : t -> key -> bool
  (** Thread-safe (internally serialised). *)

  val cardinal : t -> int
  val iter : (key -> unit) -> t -> unit
  val to_list : t -> key list

  val fill_grade : t -> float
  (** Mean leaf fill in [0..1]; the space-efficiency headline of B-slack
      trees.  Quiescent use. *)

  val check_invariants : t -> unit
end
