(* Batch-synchronous B+-tree in the spirit of PALM: clients enqueue
   operations into a shared buffer; a full buffer triggers a round that
   sorts the batch, removes intra-batch duplicates, and applies the
   remainder in ascending order to the underlying B+-tree. *)

module Make (K : Key.ORDERED) = struct
  type key = K.t

  module Tree = Bplus_tree.Make (K)

  type t = {
    lock : Olock.Spin.t;       (* protects buffer and tree during rounds *)
    mutable buffer : key array;
    mutable buffered : int;
    tree : Tree.t;
  }

  let create ?(batch_size = 4096) ?(node_capacity = 32) () =
    if batch_size < 1 then invalid_arg "Palm_tree.create: batch_size >= 1";
    {
      lock = Olock.Spin.create ();
      buffer = Array.make batch_size K.dummy;
      buffered = 0;
      tree = Tree.create ~node_capacity ();
    }

  (* caller holds [lock] *)
  let flush_locked t =
    if t.buffered > 0 then begin
      let batch = Array.sub t.buffer 0 t.buffered in
      t.buffered <- 0;
      Array.sort K.compare batch;
      (* apply in order; duplicates (intra-batch and vs the tree) are
         silently absorbed by the set semantics of the tree *)
      Array.iter (fun k -> ignore (Tree.insert t.tree k : bool)) batch
    end

  let flush t = Olock.Spin.with_lock t.lock (fun () -> flush_locked t)

  let insert t k =
    Olock.Spin.with_lock t.lock (fun () ->
        t.buffer.(t.buffered) <- k;
        t.buffered <- t.buffered + 1;
        if t.buffered >= Array.length t.buffer then flush_locked t)

  let mem t k =
    Olock.Spin.with_lock t.lock (fun () ->
        flush_locked t;
        Tree.mem t.tree k)

  let cardinal t =
    Olock.Spin.with_lock t.lock (fun () ->
        flush_locked t;
        Tree.cardinal t.tree)

  let iter f t =
    flush t;
    Tree.iter f t.tree

  let check_invariants t =
    flush t;
    Tree.check_invariants t.tree
end
