(** Synthetic network reachability workload (the Fig. 5b / Amazon EC2
    security analysis substitute).

    Models a cloud estate: instances grouped into security groups, pairwise
    subnet connectivity, and group-to-group allow rules per port; the
    analysis derives which instances can transitively reach which others on
    which port, and which are exposed to an internet-facing node:

    {v
      reach(i, j, p) :- link(i, j), member(i, g1), member(j, g2),
                        allow(g1, g2, p).
      reach(i, k, p) :- reach(i, j, p), link(j, k), member(j, g1),
                        member(k, g2), allow(g1, g2, p).
      exposed(i, p)  :- reach(0, i, p).
    v}

    The group/allow join is re-evaluated at every recursive step (it is not
    materialised into a helper relation), so the workload is {e read heavy}:
    membership tests and bound queries far outnumber insertions (Table 2's
    EC2 column shows a two-orders-of-magnitude gap), and tuples are highly
    ordered — the regime where the paper reports ~77% hint hit rates.  Like
    the paper's workload, a single relation ([reach]) concentrates most
    produced tuples. *)

type config = {
  instances : int;
  groups : int;
  ports : int;
  links_per_instance : int;
  allow_rules : int;
  groups_per_instance : int;
}

val default : config
val scaled : float -> config
val program : Ast.program
val facts : config -> Rng.t -> (string * int array) list
val output_relation : string (** ["reach"] *)
