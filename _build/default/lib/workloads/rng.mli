(** Deterministic pseudo-random numbers (splitmix64).

    All workload generators take an explicit generator so every benchmark
    and test is reproducible; streams derived with {!split} are independent,
    which the parallel benchmarks use to give each worker its own stream. *)

type t

val create : int -> t
(** Seeded generator; equal seeds yield equal streams. *)

val split : t -> t
(** A new generator statistically independent of the parent (which
    advances). *)

val next : t -> int
(** Uniform in [0, 2{^62}). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
