(** Zipf-distributed sampling over [0, n).

    Used by the workload generators to give relations the skewed access
    patterns real Datalog inputs exhibit (a few hot variables/objects and a
    long tail). *)

type t

val create : ?exponent:float -> int -> t
(** [create n] prepares a sampler over [0, n) with the given exponent
    (default 1.0).  O(n) setup, O(log n) per sample. *)

val sample : t -> Rng.t -> int
