(* Inverse-CDF sampling from a precomputed cumulative table. *)

type t = { cdf : float array }

let create ?(exponent = 1.0) n =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (w.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { cdf }

let sample t rng =
  let u = Rng.float rng in
  (* first index with cdf.(i) >= u *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo
