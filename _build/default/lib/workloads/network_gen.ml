type config = {
  instances : int;
  groups : int;
  ports : int;
  links_per_instance : int;
  allow_rules : int;
  groups_per_instance : int;
}

let default =
  {
    instances = 300;
    groups = 20;
    ports = 5;
    links_per_instance = 6;
    allow_rules = 220;
    groups_per_instance = 2;
  }

let scaled f =
  let s n = max 1 (int_of_float (float_of_int n *. f)) in
  {
    instances = s default.instances;
    groups = s default.groups;
    ports = default.ports;
    links_per_instance = default.links_per_instance;
    allow_rules = s default.allow_rules;
    groups_per_instance = default.groups_per_instance;
  }

(* The group/allow join is deliberately not materialised into a "conn"
   relation: every recursive step re-consults member and allow, as a rule
   firewall analysis over the raw configuration would.  This is what makes
   the workload read-heavy — the paper's EC2 analysis performs two orders
   of magnitude more membership tests than insertions (Table 2). *)
let program =
  Parser.parse_string
    {|
    .decl link(i:number, j:number)
    .input link
    .decl member(i:number, g:number)
    .input member
    .decl allow(g1:number, g2:number, p:number)
    .input allow
    .decl reach(i:number, j:number, p:number)
    .output reach
    .decl exposed(i:number, p:number)
    .output exposed
    reach(i, j, p) :- link(i, j), member(i, g1), member(j, g2), allow(g1, g2, p).
    reach(i, k, p) :- reach(i, j, p), link(j, k), member(j, g1), member(k, g2),
                      allow(g1, g2, p).
    exposed(i, p) :- reach(0, i, p).
    |}

let facts cfg rng =
  let out = ref [] in
  (* clustered topology: instances mostly link within their neighbourhood,
     giving locally ordered tuples *)
  for i = 0 to cfg.instances - 1 do
    for _ = 1 to cfg.links_per_instance do
      let span = 1 + Rng.int rng 16 in
      let j = (i + span) mod cfg.instances in
      if i <> j then out := ("link", [| i; j |]) :: !out
    done
  done;
  (* group membership: group correlated with instance locality *)
  let zgroup = Zipf.create ~exponent:0.7 cfg.groups in
  for i = 0 to cfg.instances - 1 do
    let home = i * cfg.groups / cfg.instances in
    out := ("member", [| i; home |]) :: !out;
    for _ = 2 to cfg.groups_per_instance do
      out := ("member", [| i; Zipf.sample zgroup rng |]) :: !out
    done
  done;
  (* allow rules: skewed toward a few hot ports *)
  let zport = Zipf.create ~exponent:1.2 cfg.ports in
  for _ = 1 to cfg.allow_rules do
    let g1 = Rng.int rng cfg.groups and g2 = Rng.int rng cfg.groups in
    out := ("allow", [| g1; g2; Zipf.sample zport rng |]) :: !out
  done;
  !out

let output_relation = "reach"
