(* splitmix64, truncated to OCaml's 63-bit ints via Key.mix64 *)

type t = { mutable state : int }

let golden = 0x2545F4914F6CDD1D (* fits in 62 bits *)

let create seed = { state = Key.mix64 (seed + 1) }

let next t =
  t.state <- t.state + golden;
  Key.mix64 t.state

let split t = { state = Key.mix64 (next t) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let bool t = next t land 1 = 1
let float t = float_of_int (next t) /. 4.611686018427388e18

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
