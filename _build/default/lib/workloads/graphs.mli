(** Graph generators for the micro-benchmarks and example programs. *)

val chain : int -> (int * int) array
(** [chain n]: edges [0->1->...->n]. *)

val cycle : int -> (int * int) array
val grid : width:int -> height:int -> (int * int) array
(** Right/down edges of a [width x height] grid (node = [y*width + x]). *)

val random_digraph : Rng.t -> nodes:int -> edges:int -> (int * int) array
(** [edges] distinct directed edges, no self-loops. *)

val scale_free : Rng.t -> nodes:int -> out_degree:int -> (int * int) array
(** Preferential attachment: node [i] links to [out_degree] earlier nodes
    chosen proportionally to their current degree.  Produces the skewed
    degree distributions of call graphs and network topologies. *)

val points_ordered : int -> (int * int) array
(** [points_ordered side]: the [side x side] grid of 2D points in
    lexicographic order — the ordered insertion workload of Fig. 3/4. *)

val points_random : Rng.t -> int -> (int * int) array
(** Same points, shuffled — the random-order workload. *)
