lib/workloads/rng.ml: Array Key
