lib/workloads/pointsto_gen.ml: Parser Rng Zipf
