lib/workloads/network_gen.ml: Parser Rng Zipf
