lib/workloads/graphs.ml: Array Hashset Key Rng
