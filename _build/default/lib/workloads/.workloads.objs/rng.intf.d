lib/workloads/rng.mli:
