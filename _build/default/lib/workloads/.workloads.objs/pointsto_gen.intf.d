lib/workloads/pointsto_gen.mli: Ast Rng
