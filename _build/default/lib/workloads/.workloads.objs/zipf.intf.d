lib/workloads/zipf.mli: Rng
