lib/workloads/zipf.ml: Array Rng
