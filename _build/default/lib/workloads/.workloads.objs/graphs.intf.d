lib/workloads/graphs.mli: Rng
