lib/workloads/network_gen.mli: Ast Rng
