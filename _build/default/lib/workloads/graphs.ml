let chain n = Array.init n (fun i -> (i, i + 1))
let cycle n = Array.init n (fun i -> (i, (i + 1) mod n))

let grid ~width ~height =
  let edges = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let v = (y * width) + x in
      if x + 1 < width then edges := (v, v + 1) :: !edges;
      if y + 1 < height then edges := (v, v + width) :: !edges
    done
  done;
  Array.of_list !edges

let random_digraph rng ~nodes ~edges =
  if edges > nodes * (nodes - 1) then
    invalid_arg "Graphs.random_digraph: too many edges requested";
  let module PS = Hashset.Make (Key.Pair) in
  let seen = PS.create ~initial_capacity:(2 * edges) () in
  let out = Array.make edges (0, 0) in
  let filled = ref 0 in
  while !filled < edges do
    let u = Rng.int rng nodes and v = Rng.int rng nodes in
    if u <> v && PS.insert seen (u, v) then begin
      out.(!filled) <- (u, v);
      incr filled
    end
  done;
  out

let scale_free rng ~nodes ~out_degree =
  (* degree-proportional choice via the "repeated endpoints" trick: sample a
     uniform position in the array of all edge endpoints so far *)
  let cap = max 16 (2 * nodes * out_degree) in
  let endpoints = Array.make cap 0 in
  let nend = ref 0 in
  let push v =
    endpoints.(!nend) <- v;
    incr nend
  in
  let edges = ref [] in
  for v = 1 to nodes - 1 do
    let d = min v out_degree in
    for _ = 1 to d do
      let u =
        if !nend = 0 || Rng.int rng 4 = 0 then Rng.int rng v
        else endpoints.(Rng.int rng !nend)
      in
      let u = if u >= v then v - 1 else u in
      edges := (v, u) :: !edges;
      push u;
      push v
    done
  done;
  Array.of_list !edges

let points_ordered side =
  Array.init (side * side) (fun i -> (i / side, i mod side))

let points_random rng side =
  let pts = points_ordered side in
  Rng.shuffle rng pts;
  pts
