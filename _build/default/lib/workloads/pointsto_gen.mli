(** Synthetic var-points-to workload (the Fig. 5a / Doop substitute).

    Generates a random program in the style of a Java-like intermediate
    representation — allocation sites, copy assignments, field loads and
    stores — plus the standard Andersen-style inclusion rules:

    {v
      vpt(v, o)            :- new(v, o).
      vpt(to, o)           :- assign(to, from), vpt(from, o).
      load_pt(to, o, f)    :- load(to, base, f), vpt(base, o).
      vpt(to, o2)          :- load_pt(to, o, f), hpt(o, f, o2).
      store_pt(f, o2, base):- store(base, f, from), vpt(from, o2),
                              store_ok(f, o2).
      hpt(o, f, o2)        :- store_pt(f, o2, base), vpt(base, o).
      alias(v, w)          :- vpt(v, o), vpt(w, o).        (optional)
    v}

    Field accesses go through the materialised views [load_pt]/[store_pt],
    as Doop's rulesets do, so every semi-naive delta variant joins through a
    selective index.

    The workload is {e insertion heavy}: the fixed point derives an order of
    magnitude more tuples than it reads back, matching the evaluation
    statistics the paper reports for the Doop/DaCapo analysis (Table 2:
    inserts within ~2x of membership tests).

    Why the substitution is faithful: Fig. 5a depends on the workload being
    write-dominated with a deep recursion through two mutually dependent
    relations, which the inclusion rules provide; the DaCapo inputs
    themselves are proprietary-sized Java programs we cannot ship. *)

type config = {
  variables : int;
  objects : int;
  fields : int;
  classes : int;
      (** type-filter granularity: a field only stores objects of a
          compatible class (mirroring Doop's type filtering, which is what
          keeps real points-to sets from exploding) *)
  functions : int;
      (** variables are partitioned into functions; each function has a
          formal parameter and a return variable *)
  calls : int;
      (** call sites; every call contributes the actual->formal and
          return->destination copy assignments of real IR *)
  allocs : int;     (** `new` statements *)
  assigns : int;
  loads : int;
  stores : int;
  with_alias : bool;
      (** also derive the (quadratic) alias relation — heavier variant *)
}

val default : config
(** A configuration that runs in seconds at 1 thread. *)

val scaled : float -> config
(** [scaled f]: [default] with all statement counts multiplied by [f]. *)

val program : config -> Ast.program
val facts : config -> Rng.t -> (string * int array) list
val output_relation : string (** ["vpt"] *)
