type config = {
  variables : int;
  objects : int;
  fields : int;
  classes : int;
      (* type filter granularity: a field stores only objects of its
         compatible class, as Doop's type filtering would *)
  functions : int;
      (* variables are partitioned into functions; calls generate the
         parameter/return copy assignments real IR produces *)
  calls : int;
  allocs : int;
  assigns : int;
  loads : int;
  stores : int;
  with_alias : bool;
}

(* The assign graph stays subcritical (assigns < variables): real programs'
   copy chains are mostly tree-like, and a supercritical random graph makes
   points-to sets — and the fixed point — blow up quadratically. *)
let default =
  {
    variables = 6000;
    objects = 1500;
    fields = 10;
    classes = 8;
    functions = 300;
    calls = 900;
    allocs = 4000;
    assigns = 3000;
    loads = 2400;
    stores = 1200;
    with_alias = false;
  }

let scaled f =
  let s n = max 1 (int_of_float (float_of_int n *. f)) in
  {
    variables = s default.variables;
    objects = s default.objects;
    fields = default.fields;
    classes = default.classes;
    functions = s default.functions;
    calls = s default.calls;
    allocs = s default.allocs;
    assigns = s default.assigns;
    loads = s default.loads;
    stores = s default.stores;
    with_alias = false;
  }

let source with_alias =
  let base =
    {|
    .decl new(v:number, o:number)
    .input new
    .decl assign(to:number, from:number)
    .input assign
    .decl load(to:number, base:number, f:number)
    .input load
    .decl store(base:number, f:number, from:number)
    .input store
    .decl store_ok(f:number, o:number)
    .input store_ok
    .decl vpt(v:number, o:number)
    .output vpt
    .decl hpt(o:number, f:number, o2:number)
    .output hpt
    .decl load_pt(to:number, o:number, f:number)
    .decl store_pt(f:number, o2:number, base:number)
    vpt(v, o) :- new(v, o).
    vpt(to, o) :- assign(to, from), vpt(from, o).
    load_pt(to, o, f) :- load(to, base, f), vpt(base, o).
    vpt(to, o2) :- load_pt(to, o, f), hpt(o, f, o2).
    store_pt(f, o2, base) :- store(base, f, from), vpt(from, o2), store_ok(f, o2).
    hpt(o, f, o2) :- store_pt(f, o2, base), vpt(base, o).
    |}
  in
  if with_alias then
    base
    ^ {|
    .decl alias(v:number, w:number)
    .output alias
    alias(v, w) :- vpt(v, o), vpt(w, o).
    |}
  else base

let program cfg = Parser.parse_string (source cfg.with_alias)

let facts cfg rng =
  (* skewed choices: a few hot variables and objects, like real programs *)
  let zvar = Zipf.create ~exponent:0.35 cfg.variables in
  let zobj = Zipf.create ~exponent:0.5 cfg.objects in
  let var () = Zipf.sample zvar rng in
  let obj () = Zipf.sample zobj rng in
  let field () = Rng.int rng cfg.fields in
  let out = ref [] in
  for _ = 1 to cfg.allocs do
    out := ("new", [| var (); obj () |]) :: !out
  done;
  for _ = 1 to cfg.assigns do
    out := ("assign", [| var (); var () |]) :: !out
  done;
  (* call structure: each function owns a contiguous slice of variables;
     slot 0 of the slice is its formal parameter, slot 1 its return
     variable.  A call copies an actual argument of the caller into the
     callee's formal and the callee's return variable into a destination
     in the caller — the inter-procedural edges of a context-insensitive
     analysis, which hub the assign graph through formals/returns the way
     real programs do. *)
  if cfg.functions > 0 && cfg.calls > 0 then begin
    let per_fn = max 3 (cfg.variables / cfg.functions) in
    let formal f = (f * per_fn) mod cfg.variables in
    let retvar f = ((f * per_fn) + 1) mod cfg.variables in
    let local f i = ((f * per_fn) + 2 + (i mod (per_fn - 2))) mod cfg.variables in
    for _ = 1 to cfg.calls do
      let caller = Rng.int rng cfg.functions
      and callee = Rng.int rng cfg.functions in
      let actual = local caller (Rng.int rng per_fn)
      and dest = local caller (Rng.int rng per_fn) in
      out := ("assign", [| formal callee; actual |]) :: !out;
      out := ("assign", [| dest; retvar callee |]) :: !out
    done
  end;
  for _ = 1 to cfg.loads do
    out := ("load", [| var (); var (); field () |]) :: !out
  done;
  for _ = 1 to cfg.stores do
    out := ("store", [| var (); field (); var () |]) :: !out
  done;
  (* type filter: field f accepts objects whose class matches f's *)
  for f = 0 to cfg.fields - 1 do
    for o = 0 to cfg.objects - 1 do
      if (o + f) mod cfg.classes = 0 then
        out := ("store_ok", [| f; o |]) :: !out
    done
  done;
  !out

let output_relation = "vpt"
