module Make (S : Set_intf.S) = struct
  type key = S.key
  type t = { base : S.t; mutex : Mutex.t }

  let wrap base = { base; mutex = Mutex.create () }
  let create () = wrap (S.create ())
  let insert t k = Mutex.protect t.mutex (fun () -> S.insert t.base k)
  let mem t k = Mutex.protect t.mutex (fun () -> S.mem t.base k)
  let cardinal t = Mutex.protect t.mutex (fun () -> S.cardinal t.base)
  let iter f t = Mutex.protect t.mutex (fun () -> S.iter f t.base)
end
