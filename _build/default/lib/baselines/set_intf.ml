(** Minimal common interface of the set data structures, used to wrap any of
    them behind a global lock ({!Locked_set}) and to write structure-generic
    tests and benchmark drivers. *)

module type S = sig
  type key
  type t

  val create : unit -> t
  val insert : t -> key -> bool
  val mem : t -> key -> bool
  val cardinal : t -> int
  val iter : (key -> unit) -> t -> unit
end
