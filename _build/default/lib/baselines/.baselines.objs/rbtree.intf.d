lib/baselines/rbtree.mli: Key
