lib/baselines/bplus_tree.mli: Key
