lib/baselines/reduction_set.ml: Array Bplus_tree Key Pool
