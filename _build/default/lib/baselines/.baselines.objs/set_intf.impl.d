lib/baselines/set_intf.ml:
