lib/baselines/hashset.mli: Key
