lib/baselines/reduction_set.mli: Bplus_tree Key Pool
