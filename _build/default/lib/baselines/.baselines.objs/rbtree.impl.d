lib/baselines/rbtree.ml: Key List Printf
