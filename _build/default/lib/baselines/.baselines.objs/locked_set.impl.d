lib/baselines/locked_set.ml: Mutex Set_intf
