lib/baselines/concurrent_hashset.ml: Array Hashset Key Olock
