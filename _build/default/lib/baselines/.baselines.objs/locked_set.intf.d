lib/baselines/locked_set.mli: Set_intf
