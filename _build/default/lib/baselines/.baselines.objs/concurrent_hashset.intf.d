lib/baselines/concurrent_hashset.mli: Key
