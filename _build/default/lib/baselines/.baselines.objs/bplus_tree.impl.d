lib/baselines/bplus_tree.ml: Array Key List Printf
