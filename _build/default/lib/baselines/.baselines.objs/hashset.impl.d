lib/baselines/hashset.ml: Array Bytes Key Printf
