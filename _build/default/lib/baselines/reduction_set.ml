module Make (K : Key.ORDERED) = struct
  type key = K.t

  module Tree = Bplus_tree.Make (K)

  (* k-way merge by repeated pairwise merging (k is the worker count, so a
     tournament tree would be over-engineering). *)
  let merge2 a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else begin
      let out = Array.make (la + lb) a.(0) in
      let i = ref 0 and j = ref 0 and o = ref 0 in
      let push k =
        if !o = 0 || K.compare out.(!o - 1) k < 0 then begin
          out.(!o) <- k;
          incr o
        end
      in
      while !i < la && !j < lb do
        let c = K.compare a.(!i) b.(!j) in
        if c <= 0 then begin
          push a.(!i);
          incr i;
          if c = 0 then incr j
        end
        else begin
          push b.(!j);
          incr j
        end
      done;
      while !i < la do
        push a.(!i);
        incr i
      done;
      while !j < lb do
        push b.(!j);
        incr j
      done;
      Array.sub out 0 !o
    end

  let merge_sorted runs = Array.fold_left merge2 [||] runs

  let build pool keys =
    let n = Array.length keys in
    let runs =
      Pool.parallel_reduce pool 0 n
        ~init:(fun () -> Tree.create ())
        ~body:(fun tree i ->
          ignore (Tree.insert tree keys.(i) : bool);
          tree)
        ~combine:(fun a b ->
          (* pairwise reduction merge: rebuild from the merged sorted runs *)
          let m = merge2 (Tree.to_sorted_array a) (Tree.to_sorted_array b) in
          Tree.of_sorted_array m)
    in
    runs
end
