(** Global-lock adapter: makes any sequential set thread-safe by serialising
    every operation through one mutex.

    This realises the paper's "google btree (global lock)" parallel
    contestant — the configuration that predictably fails to scale in
    Fig. 4 — and the globally locked engine configurations of Fig. 5. *)

module Make (S : Set_intf.S) : sig
  include Set_intf.S with type key = S.key

  val wrap : S.t -> t
  (** Protect an existing structure (e.g. one built with a non-default
      constructor). *)
end
