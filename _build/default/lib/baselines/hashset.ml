(* Open-addressing hash set with linear probing and power-of-two capacity.
   Slot states live in a byte array next to the key array: 0 = empty,
   1 = occupied (no deletion, as Datalog relations only grow). *)

module Make (K : Key.HASHABLE) = struct
  type key = K.t

  type t = {
    mutable keys : key array;
    mutable state : Bytes.t;
    mutable mask : int; (* capacity - 1 *)
    mutable count : int;
  }

  let create ?(initial_capacity = 16) () =
    let cap = ref 16 in
    while !cap < initial_capacity do
      cap := !cap * 2
    done;
    {
      keys = Array.make !cap K.dummy;
      state = Bytes.make !cap '\000';
      mask = !cap - 1;
      count = 0;
    }

  let cardinal t = t.count
  let is_empty t = t.count = 0
  let load_factor t = float_of_int t.count /. float_of_int (t.mask + 1)

  (* Returns the slot holding [k], or the first empty slot of its probe
     sequence. *)
  let probe t k =
    let i = ref (K.hash k land t.mask) in
    let continue = ref true in
    while !continue do
      if Bytes.unsafe_get t.state !i = '\000' then continue := false
      else if K.equal (Array.unsafe_get t.keys !i) k then continue := false
      else i := (!i + 1) land t.mask
    done;
    !i

  let mem t k =
    let i = probe t k in
    Bytes.unsafe_get t.state i <> '\000'

  let grow t =
    let old_keys = t.keys and old_state = t.state in
    let cap = (t.mask + 1) * 2 in
    t.keys <- Array.make cap K.dummy;
    t.state <- Bytes.make cap '\000';
    t.mask <- cap - 1;
    Array.iteri
      (fun i k ->
        if Bytes.unsafe_get old_state i <> '\000' then begin
          let j = probe t k in
          t.keys.(j) <- k;
          Bytes.unsafe_set t.state j '\001'
        end)
      old_keys

  let insert t k =
    let i = probe t k in
    if Bytes.unsafe_get t.state i <> '\000' then false
    else begin
      t.keys.(i) <- k;
      Bytes.unsafe_set t.state i '\001';
      t.count <- t.count + 1;
      if 10 * t.count > 7 * (t.mask + 1) then grow t;
      true
    end

  let iter f t =
    let state = t.state and keys = t.keys in
    for i = 0 to t.mask do
      if Bytes.unsafe_get state i <> '\000' then f (Array.unsafe_get keys i)
    done

  let fold f init t =
    let acc = ref init in
    iter (fun k -> acc := f !acc k) t;
    !acc

  let to_list t = fold (fun acc k -> k :: acc) [] t

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    let n = fold (fun acc _ -> acc + 1) 0 t in
    if n <> t.count then fail "count %d <> enumerated %d" t.count n;
    if load_factor t > 0.71 then fail "load factor too high: %f" (load_factor t);
    (* every stored key must be findable through its probe sequence *)
    iter (fun k -> if not (mem t k) then fail "key unreachable by probing") t
end
