(** Parallel-reduction set construction.

    The paper's "reduction btree" contestant: every worker inserts its share
    of the input into a thread-private B+-tree, and the private trees are
    merged afterwards — the OpenMP user-defined-reduction pattern, realised
    here as a k-way merge of the sorted per-worker contents followed by a
    bulk build.

    The technique shines when per-thread insertion work dominates the final
    merge (random order, few threads) and fades when it does not — the exact
    trade-off Fig. 4 exhibits. *)

module Make (K : Key.ORDERED) : sig
  type key = K.t

  module Tree : module type of Bplus_tree.Make (K)

  val build : Pool.t -> key array -> Tree.t
  (** [build pool keys] inserts all of [keys] (duplicates allowed) using
      every worker of [pool] and returns the merged result. *)

  val merge_sorted : key array array -> key array
  (** k-way merge of sorted (possibly overlapping) runs, dropping
      duplicates.  Exposed for tests. *)
end
