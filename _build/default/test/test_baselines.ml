(* Tests for the baseline data structures: red-black tree, hash sets,
   B+-tree, global-lock wrapper, reduction set. *)

module RB = Rbtree.Make (Key.Int)
module HS = Hashset.Make (Key.Int)
module CHS = Concurrent_hashset.Make (Key.Int)
module BP = Bplus_tree.Make (Key.Int)
module RED = Reduction_set.Make (Key.Int)
module ISet = Set.Make (Int)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))
let int_opt = Alcotest.(option int)

let rng seed =
  let s = ref (Key.mix64 (seed + 1)) in
  fun bound ->
    s := Key.mix64 (!s + 0x2545F4914F6CDD1D);
    !s mod bound

(* ---------------- red-black tree ---------------- *)

let test_rb_basic () =
  let t = RB.create () in
  check_bool "empty" true (RB.is_empty t);
  check_bool "insert" true (RB.insert t 5);
  check_bool "dup" false (RB.insert t 5);
  check_bool "mem" true (RB.mem t 5);
  check_bool "mem absent" false (RB.mem t 6);
  check_int "cardinal" 1 (RB.cardinal t);
  RB.check_invariants t

let test_rb_vs_model () =
  let r = rng 10 in
  let t = RB.create () in
  let model = ref ISet.empty in
  for _ = 1 to 20_000 do
    let k = r 5000 in
    check_bool "rb insert vs model" (not (ISet.mem k !model)) (RB.insert t k);
    model := ISet.add k !model
  done;
  RB.check_invariants t;
  check_ilist "rb contents" (ISet.elements !model) (RB.to_list t);
  Alcotest.check int_opt "rb min" (ISet.min_elt_opt !model) (RB.min_elt t);
  Alcotest.check int_opt "rb max" (ISet.max_elt_opt !model) (RB.max_elt t)

let test_rb_ordered_insert_balance () =
  let t = RB.create () in
  for i = 0 to 9999 do
    ignore (RB.insert t i : bool)
  done;
  RB.check_invariants t;
  check_int "cardinal" 10_000 (RB.cardinal t)

let test_rb_bounds () =
  let t = RB.create () in
  List.iter (fun k -> ignore (RB.insert t k : bool)) [ 2; 4; 6; 8 ];
  Alcotest.check int_opt "lb 4" (Some 4) (RB.lower_bound t 4);
  Alcotest.check int_opt "lb 5" (Some 6) (RB.lower_bound t 5);
  Alcotest.check int_opt "lb 9" None (RB.lower_bound t 9);
  Alcotest.check int_opt "ub 4" (Some 6) (RB.upper_bound t 4);
  Alcotest.check int_opt "ub 8" None (RB.upper_bound t 8)

let test_rb_iter_from () =
  let t = RB.create () in
  for i = 0 to 50 do
    ignore (RB.insert t (i * 2) : bool)
  done;
  let seen = ref [] in
  RB.iter_from
    (fun k -> if k < 20 then (seen := k :: !seen; true) else false)
    t 11;
  check_ilist "rb range" [ 12; 14; 16; 18 ] (List.rev !seen)

let prop_rb_model =
  QCheck.Test.make ~count:200 ~name:"rbtree = model"
    QCheck.(list (int_bound 400))
    (fun keys ->
      let t = RB.create () in
      List.iter (fun k -> ignore (RB.insert t k : bool)) keys;
      RB.check_invariants t;
      RB.to_list t = ISet.elements (ISet.of_list keys))

(* ---------------- hash set ---------------- *)

let test_hs_basic () =
  let t = HS.create () in
  check_bool "insert" true (HS.insert t 1);
  check_bool "dup" false (HS.insert t 1);
  check_bool "mem" true (HS.mem t 1);
  check_bool "absent" false (HS.mem t 2);
  HS.check_invariants t

let test_hs_growth () =
  let t = HS.create ~initial_capacity:4 () in
  for i = 0 to 99_999 do
    ignore (HS.insert t i : bool)
  done;
  check_int "cardinal" 100_000 (HS.cardinal t);
  HS.check_invariants t;
  for i = 0 to 99_999 do
    if not (HS.mem t i) then Alcotest.failf "hashset lost %d" i
  done;
  check_bool "absent big" false (HS.mem t 100_000)

let test_hs_collisions () =
  (* adversarial-ish: keys congruent modulo a small table *)
  let t = HS.create ~initial_capacity:16 () in
  for i = 0 to 999 do
    ignore (HS.insert t (i * 16) : bool)
  done;
  check_int "cardinal" 1000 (HS.cardinal t);
  HS.check_invariants t

let prop_hs_model =
  QCheck.Test.make ~count:200 ~name:"hashset = model"
    QCheck.(list (int_bound 500))
    (fun keys ->
      let t = HS.create () in
      List.iter (fun k -> ignore (HS.insert t k : bool)) keys;
      HS.check_invariants t;
      List.sort compare (HS.to_list t) = ISet.elements (ISet.of_list keys))

(* ---------------- concurrent hash set ---------------- *)

let test_chs_sequential () =
  let t = CHS.create ~segments:8 () in
  let r = rng 4 in
  let model = ref ISet.empty in
  for _ = 1 to 10_000 do
    let k = r 3000 in
    check_bool "chs insert vs model" (not (ISet.mem k !model)) (CHS.insert t k);
    model := ISet.add k !model
  done;
  CHS.check_invariants t;
  check_int "chs cardinal" (ISet.cardinal !model) (CHS.cardinal t);
  check_ilist "chs contents" (ISet.elements !model)
    (List.sort compare (CHS.to_list t))

let test_chs_parallel () =
  let t = CHS.create () in
  let d = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let n = 20_000 in
  let fresh = Atomic.make 0 in
  let worker () =
    let mine = ref 0 in
    for i = 0 to n - 1 do
      if CHS.insert t i then incr mine
    done;
    ignore (Atomic.fetch_and_add fresh !mine)
  in
  let ds = List.init d (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  check_int "chs parallel cardinal" n (CHS.cardinal t);
  check_int "each key fresh once" n (Atomic.get fresh);
  CHS.check_invariants t

let test_chs_parallel_disjoint () =
  let t = CHS.create () in
  let d = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let per = 20_000 in
  let ds =
    List.init d (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (CHS.insert t ((w * per) + i) : bool)
            done))
  in
  List.iter Domain.join ds;
  check_int "disjoint cardinal" (d * per) (CHS.cardinal t);
  CHS.check_invariants t

(* ---------------- B+ tree ---------------- *)

let test_bp_basic () =
  let t = BP.create () in
  check_bool "empty" true (BP.is_empty t);
  check_bool "insert" true (BP.insert t 3);
  check_bool "dup" false (BP.insert t 3);
  check_bool "mem" true (BP.mem t 3);
  BP.check_invariants t

let test_bp_vs_model () =
  let r = rng 20 in
  let t = BP.create ~node_capacity:4 () in
  let model = ref ISet.empty in
  for _ = 1 to 20_000 do
    let k = r 6000 in
    check_bool "bp insert vs model" (not (ISet.mem k !model)) (BP.insert t k);
    model := ISet.add k !model
  done;
  BP.check_invariants t;
  check_ilist "bp contents" (ISet.elements !model) (BP.to_list t)

let test_bp_bounds_vs_model () =
  let r = rng 21 in
  let t = BP.create ~node_capacity:6 () in
  let model = ref ISet.empty in
  for _ = 1 to 3000 do
    let k = r 1000 * 2 in
    ignore (BP.insert t k : bool);
    model := ISet.add k !model
  done;
  for probe = -3 to 2003 do
    Alcotest.check int_opt "bp lb"
      (ISet.find_first_opt (fun x -> x >= probe) !model)
      (BP.lower_bound t probe);
    Alcotest.check int_opt "bp ub"
      (ISet.find_first_opt (fun x -> x > probe) !model)
      (BP.upper_bound t probe)
  done

let test_bp_iter_from () =
  let t = BP.create ~node_capacity:4 () in
  for i = 0 to 200 do
    ignore (BP.insert t (i * 3) : bool)
  done;
  let seen = ref [] in
  BP.iter_from
    (fun k -> if k <= 30 then (seen := k :: !seen; true) else false)
    t 10;
  check_ilist "bp range" [ 12; 15; 18; 21; 24; 27; 30 ] (List.rev !seen)

let test_bp_bulk () =
  List.iter
    (fun n ->
      let arr = Array.init n (fun i -> i * 5) in
      let t = BP.of_sorted_array ~node_capacity:6 arr in
      BP.check_invariants t;
      check_int "bp bulk cardinal" n (BP.cardinal t);
      ignore (BP.insert t 1 : bool);
      BP.check_invariants t)
    [ 0; 1; 2; 6; 7; 30; 500; 4096 ]

let prop_bp_model =
  QCheck.Test.make ~count:200 ~name:"bplus = model"
    QCheck.(list (int_bound 400))
    (fun keys ->
      let t = BP.create ~node_capacity:4 () in
      List.iter (fun k -> ignore (BP.insert t k : bool)) keys;
      BP.check_invariants t;
      BP.to_list t = ISet.elements (ISet.of_list keys))

let prop_bp_bulk =
  QCheck.Test.make ~count:200 ~name:"bplus bulk build"
    QCheck.(list_of_size Gen.(0 -- 1500) (int_bound 100_000))
    (fun keys ->
      let uniq = Array.of_list (ISet.elements (ISet.of_list keys)) in
      let t = BP.of_sorted_array ~node_capacity:8 uniq in
      BP.check_invariants t;
      BP.to_sorted_array t = uniq)

(* ---------------- locked set ---------------- *)

module LockedRB = Locked_set.Make (struct
  type key = int
  type t = RB.t

  let create () = RB.create ()
  let insert = RB.insert
  let mem = RB.mem
  let cardinal = RB.cardinal
  let iter = RB.iter
end)

let test_locked_parallel () =
  let t = LockedRB.create () in
  let d = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let per = 5_000 in
  let ds =
    List.init d (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (LockedRB.insert t ((w * per) + i) : bool)
            done))
  in
  List.iter Domain.join ds;
  check_int "locked set cardinal" (d * per) (LockedRB.cardinal t)

(* ---------------- reduction set ---------------- *)

let test_reduction_build () =
  let r = rng 30 in
  let keys = Array.init 50_000 (fun _ -> r 20_000) in
  Pool.with_pool 4 (fun p ->
      let tree = RED.build p keys in
      RED.Tree.check_invariants tree;
      let model = Array.fold_left (fun s k -> ISet.add k s) ISet.empty keys in
      check_int "reduction cardinal" (ISet.cardinal model) (RED.Tree.cardinal tree);
      check_ilist "reduction contents" (ISet.elements model) (RED.Tree.to_list tree))

let test_merge_sorted () =
  let a = [| 1; 3; 5 |] and b = [| 2; 3; 4; 9 |] and c = [| 0; 9 |] in
  Alcotest.(check (array int))
    "merge dedup" [| 0; 1; 2; 3; 4; 5; 9 |]
    (RED.merge_sorted [| a; b; c |]);
  Alcotest.(check (array int)) "merge empty" [||] (RED.merge_sorted [| [||]; [||] |])

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "baselines"
    [
      ( "rbtree",
        [
          Alcotest.test_case "basic" `Quick test_rb_basic;
          Alcotest.test_case "vs model" `Quick test_rb_vs_model;
          Alcotest.test_case "ordered balance" `Quick test_rb_ordered_insert_balance;
          Alcotest.test_case "bounds" `Quick test_rb_bounds;
          Alcotest.test_case "iter_from" `Quick test_rb_iter_from;
        ] );
      ( "hashset",
        [
          Alcotest.test_case "basic" `Quick test_hs_basic;
          Alcotest.test_case "growth" `Quick test_hs_growth;
          Alcotest.test_case "collisions" `Quick test_hs_collisions;
        ] );
      ( "concurrent_hashset",
        [
          Alcotest.test_case "sequential" `Quick test_chs_sequential;
          Alcotest.test_case "parallel overlap" `Quick test_chs_parallel;
          Alcotest.test_case "parallel disjoint" `Quick test_chs_parallel_disjoint;
        ] );
      ( "bplus_tree",
        [
          Alcotest.test_case "basic" `Quick test_bp_basic;
          Alcotest.test_case "vs model" `Quick test_bp_vs_model;
          Alcotest.test_case "bounds" `Quick test_bp_bounds_vs_model;
          Alcotest.test_case "iter_from" `Quick test_bp_iter_from;
          Alcotest.test_case "bulk" `Quick test_bp_bulk;
        ] );
      ( "wrappers",
        [
          Alcotest.test_case "locked parallel" `Quick test_locked_parallel;
          Alcotest.test_case "reduction build" `Quick test_reduction_build;
          Alcotest.test_case "merge sorted" `Quick test_merge_sorted;
        ] );
      qsuite "properties" [ prop_rb_model; prop_hs_model; prop_bp_model; prop_bp_bulk ];
    ]
