(* Tests for the workload generators and harness utilities. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let tc = Alcotest.test_case

(* ---------------- rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 1000 do
    check_int "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.next a = Rng.next b then incr same
  done;
  check_bool "different seeds diverge" true (!same < 5)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_uniformity () =
  let r = Rng.create 5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d wildly off: %d vs %d" i c expected)
    buckets

let test_rng_split_independent () =
  let parent = Rng.create 3 in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.next parent = Rng.next child then incr same
  done;
  check_bool "split streams diverge" true (!same < 5)

let test_shuffle_is_permutation () =
  let r = Rng.create 9 in
  let a = Array.init 1000 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_bool "permutation" true (sorted = Array.init 1000 Fun.id);
  check_bool "actually shuffled" true (a <> Array.init 1000 Fun.id)

(* ---------------- zipf ---------------- *)

let test_zipf_bounds () =
  let z = Zipf.create 50 in
  let r = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Zipf.sample z r in
    if v < 0 || v >= 50 then Alcotest.failf "zipf out of bounds: %d" v
  done

let test_zipf_skew () =
  let z = Zipf.create 100 in
  let r = Rng.create 12 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let v = Zipf.sample z r in
    counts.(v) <- counts.(v) + 1
  done;
  check_bool "rank 0 dominates rank 50" true (counts.(0) > 10 * counts.(50));
  check_bool "rank 0 ~ 2x rank 1" true
    (counts.(0) > counts.(1) && counts.(0) < 3 * counts.(1))

(* ---------------- graphs ---------------- *)

let test_grid_edge_count () =
  let w = 7 and h = 4 in
  check_int "grid edges formula"
    (((w - 1) * h) + (w * (h - 1)))
    (Array.length (Graphs.grid ~width:w ~height:h))

let test_random_digraph () =
  let r = Rng.create 13 in
  let edges = Graphs.random_digraph r ~nodes:50 ~edges:200 in
  check_int "requested edges" 200 (Array.length edges);
  let module PS = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let set = Array.fold_left (fun s e -> PS.add e s) PS.empty edges in
  check_int "edges distinct" 200 (PS.cardinal set);
  Array.iter
    (fun (u, v) ->
      if u = v then Alcotest.fail "self loop";
      if u < 0 || u >= 50 || v < 0 || v >= 50 then Alcotest.fail "out of range")
    edges

let test_scale_free_skew () =
  let r = Rng.create 14 in
  let edges = Graphs.scale_free r ~nodes:2000 ~out_degree:3 in
  let deg = Array.make 2000 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let sorted = Array.copy deg in
  Array.sort (fun a b -> compare b a) sorted;
  (* hubs must exist: top node far above the median *)
  check_bool "skewed degrees" true (sorted.(0) > 5 * max 1 sorted.(1000))

let test_points () =
  let pts = Graphs.points_ordered 10 in
  check_int "count" 100 (Array.length pts);
  check_bool "lexicographic" true
    (Array.for_all
       (fun i -> i = 0 || Key.Pair.compare pts.(i - 1) pts.(i) < 0)
       (Array.init 100 Fun.id));
  let rnd = Graphs.points_random (Rng.create 15) 10 in
  let s1 = List.sort compare (Array.to_list pts) in
  let s2 = List.sort compare (Array.to_list rnd) in
  check_bool "same point set" true (s1 = s2);
  check_bool "shuffled" true (pts <> rnd)

(* ---------------- datalog workload generators ---------------- *)

let test_pointsto_runs () =
  let cfg =
    {
      Pointsto_gen.variables = 200;
      objects = 40;
      fields = 4;
      classes = 4;
      functions = 10;
      calls = 30;
      allocs = 150;
      assigns = 300;
      loads = 100;
      stores = 60;
      with_alias = true;
    }
  in
  let prog = Pointsto_gen.program cfg in
  let facts = Pointsto_gen.facts cfg (Rng.create 16) in
  let e = Engine.create prog in
  List.iter (fun (r, t) -> Engine.add_fact e r t) facts;
  Pool.with_pool 2 (fun p -> Engine.run e p);
  check_bool "vpt nonempty" true (Engine.relation_size e "vpt" > 0);
  check_bool "alias derived" true (Engine.relation_size e "alias" > 0);
  (* every alloc produces at least its own vpt tuple *)
  check_bool "vpt >= distinct allocs" true
    (Engine.relation_size e "vpt"
    >= List.length
         (List.sort_uniq compare
            (List.filter_map
               (fun (r, t) -> if r = "new" then Some (t.(0), t.(1)) else None)
               facts)))

let test_pointsto_deterministic () =
  let facts1 = Pointsto_gen.facts Pointsto_gen.default (Rng.create 1) in
  let facts2 = Pointsto_gen.facts Pointsto_gen.default (Rng.create 1) in
  check_bool "same facts for same seed" true (facts1 = facts2)

let test_network_runs () =
  let cfg =
    {
      Network_gen.instances = 60;
      groups = 8;
      ports = 3;
      links_per_instance = 4;
      allow_rules = 40;
      groups_per_instance = 2;
    }
  in
  let facts = Network_gen.facts cfg (Rng.create 17) in
  let e = Engine.create ~instrument:true Network_gen.program in
  List.iter (fun (r, t) -> Engine.add_fact e r t) facts;
  Pool.with_pool 2 (fun p -> Engine.run e p);
  check_bool "reach nonempty" true (Engine.relation_size e "reach" > 0);
  (* read heavy: membership + range queries outnumber inserts *)
  let s = Option.get (Engine.stats e) in
  check_bool "read heavy" true
    (s.Dl_stats.s_mem_tests + s.Dl_stats.s_lower_bounds > s.Dl_stats.s_inserts)

let test_workload_scaling () =
  let small = Pointsto_gen.scaled 0.1 and big = Pointsto_gen.scaled 2.0 in
  check_bool "scaling monotone" true
    (small.Pointsto_gen.assigns < big.Pointsto_gen.assigns);
  let s = Network_gen.scaled 0.1 and b = Network_gen.scaled 2.0 in
  check_bool "network scaling monotone" true
    (s.Network_gen.instances < b.Network_gen.instances)

(* ---------------- harness ---------------- *)

let test_thread_counts () =
  Alcotest.(check (list int)) "max 8" [ 1; 2; 4; 8 ] (Bench_util.thread_counts ~max:8);
  Alcotest.(check (list int)) "max 6" [ 1; 2; 4; 6 ] (Bench_util.thread_counts ~max:6);
  Alcotest.(check (list int)) "max 1" [ 1 ] (Bench_util.thread_counts ~max:1)

let test_mops () =
  check_bool "mops" true (abs_float (Bench_util.mops 2_000_000 2.0 -. 1.0) < 1e-9);
  check_bool "zero time" true (Bench_util.mops 5 0.0 = 0.0)

let test_timing () =
  let r, dt = Bench_util.time (fun () -> 21 * 2) in
  check_int "result" 42 r;
  check_bool "non-negative" true (dt >= 0.0);
  let b = Bench_util.best_of 3 (fun () -> ()) in
  check_bool "best_of non-negative" true (b >= 0.0)

let () =
  Alcotest.run "workloads"
    [
      ( "rng",
        [
          tc "deterministic" `Quick test_rng_deterministic;
          tc "seed sensitivity" `Quick test_rng_seed_sensitivity;
          tc "bounds" `Quick test_rng_bounds;
          tc "uniformity" `Quick test_rng_uniformity;
          tc "split" `Quick test_rng_split_independent;
          tc "shuffle" `Quick test_shuffle_is_permutation;
        ] );
      ( "zipf",
        [ tc "bounds" `Quick test_zipf_bounds; tc "skew" `Quick test_zipf_skew ] );
      ( "graphs",
        [
          tc "grid edges" `Quick test_grid_edge_count;
          tc "random digraph" `Quick test_random_digraph;
          tc "scale free" `Quick test_scale_free_skew;
          tc "points" `Quick test_points;
        ] );
      ( "datalog workloads",
        [
          tc "points-to runs" `Quick test_pointsto_runs;
          tc "points-to deterministic" `Quick test_pointsto_deterministic;
          tc "network runs" `Quick test_network_runs;
          tc "scaling" `Quick test_workload_scaling;
        ] );
      ( "harness",
        [
          tc "thread counts" `Quick test_thread_counts;
          tc "mops" `Quick test_mops;
          tc "timing" `Quick test_timing;
        ] );
    ]
