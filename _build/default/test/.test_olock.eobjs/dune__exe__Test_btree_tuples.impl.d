test/test_btree_tuples.ml: Alcotest Array Atomic Btree Btree_tuples Domain Fun Key List QCheck QCheck_alcotest Set
