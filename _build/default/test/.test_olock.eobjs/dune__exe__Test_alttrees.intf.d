test/test_alttrees.mli:
