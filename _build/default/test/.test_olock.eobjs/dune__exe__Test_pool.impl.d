test/test_pool.ml: Alcotest Array Atomic Fun List Pool Printf
