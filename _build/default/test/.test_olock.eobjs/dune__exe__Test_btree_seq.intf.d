test/test_btree_seq.mli:
