test/test_workloads.ml: Alcotest Array Bench_util Dl_stats Engine Fun Graphs Key List Network_gen Option Pointsto_gen Pool Rng Set Zipf
