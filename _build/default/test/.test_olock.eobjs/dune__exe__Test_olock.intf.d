test/test_olock.mli:
