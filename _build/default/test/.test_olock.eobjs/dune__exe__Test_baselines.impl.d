test/test_baselines.ml: Alcotest Array Atomic Bplus_tree Concurrent_hashset Domain Gen Hashset Int Key List Locked_set Pool QCheck QCheck_alcotest Rbtree Reduction_set Set
