test/test_btree_seq.ml: Alcotest Array Btree Btree_seq Gen Int Key List QCheck QCheck_alcotest Set
