test/test_olock.ml: Alcotest Atomic Domain List Olock
