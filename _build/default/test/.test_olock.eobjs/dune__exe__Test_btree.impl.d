test/test_btree.ml: Alcotest Array Atomic Btree Domain Fun Gen Int Key List Pool Printf QCheck QCheck_alcotest Set
