test/test_btree_tuples.mli:
