test/test_alttrees.ml: Alcotest Array Atomic Bslack_tree Domain Int Key List Masstree Palm_tree Printf QCheck QCheck_alcotest Set
