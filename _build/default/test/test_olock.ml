(* Unit and stress tests for the optimistic read-write lock. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_initial_state () =
  let l = Olock.create () in
  check "fresh lock is unlocked" false (Olock.is_write_locked l);
  check_int "fresh version is 0" 0 (Olock.version l)

let test_read_protocol () =
  let l = Olock.create () in
  let lease = Olock.start_read l in
  check "lease valid with no writer" true (Olock.valid l lease);
  check "end_read succeeds with no writer" true (Olock.end_read l lease)

let test_write_invalidates_lease () =
  let l = Olock.create () in
  let lease = Olock.start_read l in
  check "try_start_write succeeds" true (Olock.try_start_write l);
  check "lease invalid during write" false (Olock.valid l lease);
  Olock.end_write l;
  check "lease still invalid after write" false (Olock.valid l lease);
  let lease2 = Olock.start_read l in
  check "new lease valid" true (Olock.valid l lease2)

let test_abort_write_restores_lease () =
  let l = Olock.create () in
  let lease = Olock.start_read l in
  check "write starts" true (Olock.try_start_write l);
  Olock.abort_write l;
  (* abort means "no modification took place": old leases become valid again *)
  check "lease valid after aborted write" true (Olock.valid l lease)

let test_upgrade () =
  let l = Olock.create () in
  let lease = Olock.start_read l in
  check "upgrade succeeds on quiet lock" true (Olock.try_upgrade_to_write l lease);
  check "write locked after upgrade" true (Olock.is_write_locked l);
  Olock.end_write l;
  check "unlocked after end_write" false (Olock.is_write_locked l)

let test_upgrade_fails_after_write () =
  let l = Olock.create () in
  let lease = Olock.start_read l in
  Olock.start_write l;
  Olock.end_write l;
  check "upgrade fails after intervening write" false
    (Olock.try_upgrade_to_write l lease)

let test_writers_mutually_exclusive () =
  let l = Olock.create () in
  check "first writer" true (Olock.try_start_write l);
  check "second writer rejected" false (Olock.try_start_write l);
  Olock.end_write l;
  check "writer admitted after release" true (Olock.try_start_write l);
  Olock.end_write l

(* Stress: N domains increment a plain counter under start_write/end_write;
   no increment may be lost. *)
let test_writer_exclusion_stress () =
  let l = Olock.create () in
  let counter = ref 0 in
  let domains = 4 and per_domain = 10_000 in
  let worker () =
    for _ = 1 to per_domain do
      Olock.start_write l;
      counter := !counter + 1;
      Olock.end_write l
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  check_int "no lost updates" (domains * per_domain) !counter

(* Stress: seqlock-protected pair (x, y) with invariant x = y.  Readers must
   never validate an observation with x <> y. *)
let test_seqlock_consistency_stress () =
  let l = Olock.create () in
  let x = ref 0 and y = ref 0 in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let reader () =
    while not (Atomic.get stop) do
      let lease = Olock.start_read l in
      let a = !x in
      let b = !y in
      if Olock.end_read l lease && a <> b then Atomic.incr violations
    done
  in
  let writer () =
    for i = 1 to 50_000 do
      Olock.start_write l;
      x := i;
      (* widen the race window *)
      if i land 63 = 0 then Domain.cpu_relax ();
      y := i;
      Olock.end_write l
    done;
    Atomic.set stop true
  in
  let readers = List.init 3 (fun _ -> Domain.spawn reader) in
  let w = Domain.spawn writer in
  Domain.join w;
  List.iter Domain.join readers;
  check_int "validated reads always consistent" 0 (Atomic.get violations)

let test_spin_lock () =
  let l = Olock.Spin.create () in
  check "try_acquire on free lock" true (Olock.Spin.try_acquire l);
  check "second try_acquire fails" false (Olock.Spin.try_acquire l);
  Olock.Spin.release l;
  let r = Olock.Spin.with_lock l (fun () -> 42) in
  check_int "with_lock result" 42 r;
  check "released after with_lock" true (Olock.Spin.try_acquire l);
  Olock.Spin.release l

let test_spin_lock_stress () =
  let l = Olock.Spin.create () in
  let counter = ref 0 in
  let domains = 4 and per_domain = 10_000 in
  let worker () =
    for _ = 1 to per_domain do
      Olock.Spin.with_lock l (fun () -> counter := !counter + 1)
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  check_int "no lost updates under spin lock" (domains * per_domain) !counter

let test_rwlock_basic () =
  let l = Olock.Rwlock.create () in
  check "reader admitted" true (Olock.Rwlock.try_read_lock l);
  check "second reader admitted" true (Olock.Rwlock.try_read_lock l);
  check "writer blocked by readers" false (Olock.Rwlock.try_write_lock l);
  Olock.Rwlock.read_unlock l;
  Olock.Rwlock.read_unlock l;
  check "writer admitted when free" true (Olock.Rwlock.try_write_lock l);
  check "reader blocked by writer" false (Olock.Rwlock.try_read_lock l);
  check "second writer blocked" false (Olock.Rwlock.try_write_lock l);
  Olock.Rwlock.write_unlock l;
  check "reader admitted after writer" true (Olock.Rwlock.try_read_lock l);
  Olock.Rwlock.read_unlock l

let test_rwlock_stress () =
  let l = Olock.Rwlock.create () in
  let x = ref 0 and y = ref 0 in
  let violations = Atomic.make 0 in
  let stop = Atomic.make false in
  let reader () =
    while not (Atomic.get stop) do
      Olock.Rwlock.read_lock l;
      if !x <> !y then Atomic.incr violations;
      Olock.Rwlock.read_unlock l
    done
  in
  let writer () =
    for i = 1 to 20_000 do
      Olock.Rwlock.write_lock l;
      x := i;
      y := i;
      Olock.Rwlock.write_unlock l
    done;
    Atomic.set stop true
  in
  let rs = List.init 2 (fun _ -> Domain.spawn reader) in
  let w = Domain.spawn writer in
  Domain.join w;
  List.iter Domain.join rs;
  check_int "no torn reads under rwlock" 0 (Atomic.get violations)

let test_backoff () =
  let b = Olock.Backoff.create ~ceiling:8 () in
  (* just exercise the API: growth and reset must not diverge or raise *)
  for _ = 1 to 20 do
    Olock.Backoff.once b
  done;
  Olock.Backoff.reset b;
  Olock.Backoff.once b;
  check "backoff terminates" true true

let () =
  Alcotest.run "olock"
    [
      ( "protocol",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "read protocol" `Quick test_read_protocol;
          Alcotest.test_case "write invalidates lease" `Quick
            test_write_invalidates_lease;
          Alcotest.test_case "abort restores lease" `Quick
            test_abort_write_restores_lease;
          Alcotest.test_case "upgrade" `Quick test_upgrade;
          Alcotest.test_case "upgrade fails after write" `Quick
            test_upgrade_fails_after_write;
          Alcotest.test_case "writers mutually exclusive" `Quick
            test_writers_mutually_exclusive;
        ] );
      ( "stress",
        [
          Alcotest.test_case "writer exclusion" `Quick test_writer_exclusion_stress;
          Alcotest.test_case "seqlock consistency" `Quick
            test_seqlock_consistency_stress;
        ] );
      ( "spin",
        [
          Alcotest.test_case "basic" `Quick test_spin_lock;
          Alcotest.test_case "stress" `Quick test_spin_lock_stress;
          Alcotest.test_case "backoff" `Quick test_backoff;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "basic" `Quick test_rwlock_basic;
          Alcotest.test_case "stress" `Quick test_rwlock_stress;
        ] );
    ]
