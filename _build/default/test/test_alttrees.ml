(* Tests for the Table 3 contestants: PALM tree, Masstree, B-slack tree. *)

module PT = Palm_tree.Make (Key.Int)
module MT = Masstree.Make (Key.Int)
module BS = Bslack_tree.Make (Key.Int)
module ISet = Set.Make (Int)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))

let rng seed =
  let s = ref (Key.mix64 (seed + 1)) in
  fun bound ->
    s := Key.mix64 (!s + 0x2545F4914F6CDD1D);
    !s mod bound

let domains () = min 8 (max 2 (Domain.recommended_domain_count ()))

(* ---------------- PALM ---------------- *)

let test_palm_basic () =
  let t = PT.create ~batch_size:8 () in
  PT.insert t 5;
  PT.insert t 3;
  PT.insert t 5;
  check_bool "mem flushes" true (PT.mem t 5);
  check_bool "mem 3" true (PT.mem t 3);
  check_bool "absent" false (PT.mem t 4);
  check_int "dedup across batch" 2 (PT.cardinal t);
  PT.check_invariants t

let test_palm_vs_model () =
  let r = rng 50 in
  let t = PT.create ~batch_size:64 ~node_capacity:8 () in
  let model = ref ISet.empty in
  for _ = 1 to 20_000 do
    let k = r 5000 in
    PT.insert t k;
    model := ISet.add k !model
  done;
  PT.flush t;
  check_int "palm cardinal" (ISet.cardinal !model) (PT.cardinal t);
  let out = ref [] in
  PT.iter (fun k -> out := k :: !out) t;
  check_ilist "palm contents" (ISet.elements !model) (List.rev !out);
  PT.check_invariants t

let test_palm_parallel () =
  let t = PT.create () in
  let d = domains () in
  let per = 10_000 in
  let ds =
    List.init d (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              PT.insert t ((w * per) + i)
            done))
  in
  List.iter Domain.join ds;
  PT.flush t;
  check_int "palm parallel cardinal" (d * per) (PT.cardinal t);
  PT.check_invariants t

(* ---------------- Masstree ---------------- *)

let test_mass_basic () =
  let t = MT.create () in
  check_bool "insert" true (MT.insert t 9);
  check_bool "dup" false (MT.insert t 9);
  check_bool "mem" true (MT.mem t 9);
  check_bool "absent" false (MT.mem t 10);
  check_int "cardinal" 1 (MT.cardinal t);
  MT.check_invariants t

let test_mass_vs_model () =
  let r = rng 60 in
  let t = MT.create ~node_capacity:4 () in
  let model = ref ISet.empty in
  for _ = 1 to 30_000 do
    let k = r 8000 in
    check_bool "mass insert vs model" (not (ISet.mem k !model)) (MT.insert t k);
    model := ISet.add k !model
  done;
  MT.check_invariants t;
  check_ilist "mass contents" (ISet.elements !model) (MT.to_list t)

let test_mass_ordered () =
  let t = MT.create ~node_capacity:8 () in
  for i = 0 to 9999 do
    ignore (MT.insert t i : bool)
  done;
  MT.check_invariants t;
  check_int "mass ordered cardinal" 10_000 (MT.cardinal t)

let test_mass_parallel_overlap () =
  let t = MT.create () in
  let d = domains () in
  let n = 20_000 in
  let fresh = Atomic.make 0 in
  let worker () =
    let mine = ref 0 in
    for i = 0 to n - 1 do
      if MT.insert t i then incr mine
    done;
    ignore (Atomic.fetch_and_add fresh !mine)
  in
  let ds = List.init d (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  check_int "mass cardinal" n (MT.cardinal t);
  check_int "fresh once" n (Atomic.get fresh);
  MT.check_invariants t

let test_mass_parallel_random () =
  let t = MT.create ~node_capacity:8 () in
  let d = domains () in
  let per = 20_000 in
  let streams =
    Array.init d (fun w ->
        let r = rng (w + 70) in
        Array.init per (fun _ -> r 500_000))
  in
  let ds =
    Array.to_list
      (Array.mapi
         (fun _w keys ->
           Domain.spawn (fun () ->
               Array.iter (fun k -> ignore (MT.insert t k : bool)) keys))
         streams)
  in
  List.iter Domain.join ds;
  MT.check_invariants t;
  let model =
    Array.fold_left
      (fun s a -> Array.fold_left (fun s k -> ISet.add k s) s a)
      ISet.empty streams
  in
  check_int "mass union cardinal" (ISet.cardinal model) (MT.cardinal t);
  check_bool "mass contents = union" true (MT.to_list t = ISet.elements model)

let test_mass_concurrent_reads () =
  (* readers race with writers; every read must terminate and return a
     value consistent with "inserted before or during the read" *)
  let t = MT.create () in
  for i = 0 to 999 do
    ignore (MT.insert t (2 * i) : bool)
  done;
  let stop = Atomic.make false in
  let bad = Atomic.make 0 in
  let reader () =
    while not (Atomic.get stop) do
      (* keys 0,2,..,1998 are permanently present *)
      if not (MT.mem t 1998) then Atomic.incr bad;
      if MT.mem t (-1) then Atomic.incr bad
    done
  in
  let writer () =
    for i = 0 to 99_999 do
      ignore (MT.insert t (10_000 + i) : bool)
    done;
    Atomic.set stop true
  in
  let rs = List.init 2 (fun _ -> Domain.spawn reader) in
  let w = Domain.spawn writer in
  Domain.join w;
  List.iter Domain.join rs;
  check_int "no inconsistent reads" 0 (Atomic.get bad);
  MT.check_invariants t

(* ---------------- B-slack ---------------- *)

let test_bslack_basic () =
  let t = BS.create () in
  check_bool "insert" true (BS.insert t 1);
  check_bool "dup" false (BS.insert t 1);
  check_bool "mem" true (BS.mem t 1);
  check_int "cardinal" 1 (BS.cardinal t);
  BS.check_invariants t

let test_bslack_vs_model () =
  let r = rng 80 in
  let t = BS.create ~node_capacity:4 () in
  let model = ref ISet.empty in
  for _ = 1 to 30_000 do
    let k = r 8000 in
    check_bool "bslack insert vs model" (not (ISet.mem k !model)) (BS.insert t k);
    model := ISet.add k !model
  done;
  BS.check_invariants t;
  check_ilist "bslack contents" (ISet.elements !model) (BS.to_list t)

let test_bslack_fill_grade () =
  (* the space-efficiency claim: ordered inserts with slack shedding must
     reach clearly higher fill than a plain B+-tree's worst case of ~50% *)
  let t = BS.create ~node_capacity:16 () in
  for i = 0 to 99_999 do
    ignore (BS.insert t i : bool)
  done;
  BS.check_invariants t;
  let fill = BS.fill_grade t in
  check_bool (Printf.sprintf "fill %.2f > 0.60" fill) true (fill > 0.60)

let test_bslack_parallel () =
  let t = BS.create () in
  let d = domains () in
  let per = 5_000 in
  let ds =
    List.init d (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (BS.insert t ((w * per) + i) : bool)
            done))
  in
  List.iter Domain.join ds;
  check_int "bslack parallel" (d * per) (BS.cardinal t);
  BS.check_invariants t

let prop_mass_model =
  QCheck.Test.make ~count:200 ~name:"masstree = model"
    QCheck.(list (int_bound 300))
    (fun keys ->
      let t = MT.create ~node_capacity:4 () in
      List.iter (fun k -> ignore (MT.insert t k : bool)) keys;
      MT.check_invariants t;
      MT.to_list t = ISet.elements (ISet.of_list keys))

let prop_bslack_model =
  QCheck.Test.make ~count:200 ~name:"bslack = model"
    QCheck.(list (int_bound 300))
    (fun keys ->
      let t = BS.create ~node_capacity:4 () in
      List.iter (fun k -> ignore (BS.insert t k : bool)) keys;
      BS.check_invariants t;
      BS.to_list t = ISet.elements (ISet.of_list keys))

let prop_palm_model =
  QCheck.Test.make ~count:200 ~name:"palm = model"
    QCheck.(list (int_bound 300))
    (fun keys ->
      let t = PT.create ~batch_size:16 ~node_capacity:4 () in
      List.iter (PT.insert t) keys;
      PT.flush t;
      PT.check_invariants t;
      let out = ref [] in
      PT.iter (fun k -> out := k :: !out) t;
      List.rev !out = ISet.elements (ISet.of_list keys))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "alttrees"
    [
      ( "palm",
        [
          Alcotest.test_case "basic" `Quick test_palm_basic;
          Alcotest.test_case "vs model" `Quick test_palm_vs_model;
          Alcotest.test_case "parallel" `Quick test_palm_parallel;
        ] );
      ( "masstree",
        [
          Alcotest.test_case "basic" `Quick test_mass_basic;
          Alcotest.test_case "vs model" `Quick test_mass_vs_model;
          Alcotest.test_case "ordered" `Quick test_mass_ordered;
          Alcotest.test_case "parallel overlap" `Quick test_mass_parallel_overlap;
          Alcotest.test_case "parallel random" `Quick test_mass_parallel_random;
          Alcotest.test_case "concurrent reads" `Quick test_mass_concurrent_reads;
        ] );
      ( "bslack",
        [
          Alcotest.test_case "basic" `Quick test_bslack_basic;
          Alcotest.test_case "vs model" `Quick test_bslack_vs_model;
          Alcotest.test_case "fill grade" `Quick test_bslack_fill_grade;
          Alcotest.test_case "parallel" `Quick test_bslack_parallel;
        ] );
      qsuite "properties" [ prop_mass_model; prop_bslack_model; prop_palm_model ];
    ]
