(* Resident multi-domain Datalog query server.

     datalog_serve --listen unix:/tmp/dl.sock --program path.dl --facts dir/
     datalog_serve --listen 7411 --threads 8 --serve-metrics 9100

   Keeps an engine resident and serves the Dl_proto line protocol:
   concurrent clients mix ASSERT/LOAD ingest with QUERY traffic, the
   admission scheduler batches ingest into writer phases (generation
   flips) and fans queries out as concurrent reader phases on the domain
   pool.  An optional --program/--facts pair preloads the server through
   its own client module — the same path every other client takes. *)

let pf fmt = Printf.printf fmt

let fail_client ctx = function
  | Error m ->
    Printf.eprintf "datalog_serve: preload %s: %s\n" ctx m;
    exit 1
  | Ok (Dl_client.Err (code, msg)) ->
    Printf.eprintf "datalog_serve: preload %s: ERR %s %s\n" ctx code msg;
    exit 1
  | Ok r -> r

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_lines path =
  let text = read_file path in
  List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)

(* Preload through the protocol: the server owns all engine state, so
   even our own --program/--facts go through a client session. *)
let preload addr program facts_dir =
  match Dl_client.connect addr with
  | Error m ->
    Printf.eprintf "datalog_serve: cannot connect for preload: %s\n" m;
    exit 1
  | Ok c ->
    Fun.protect ~finally:(fun () -> Dl_client.close c) @@ fun () ->
    (match fail_client "RULES" (Dl_client.rules c (read_file program)) with
    | Dl_client.Ok_ info -> pf "preload: %s\n%!" info
    | _ ->
      Printf.eprintf "datalog_serve: preload RULES: unexpected reply\n";
      exit 1);
    match facts_dir with
    | None -> ()
    | Some dir ->
      let entries = Sys.readdir dir in
      Array.sort compare entries;
      Array.iter
        (fun entry ->
          match Filename.chop_suffix_opt ~suffix:".facts" entry with
          | None -> ()
          | Some rel -> (
            let rows = read_lines (Filename.concat dir entry) in
            match fail_client ("LOAD " ^ rel) (Dl_client.load c rel rows) with
            | Dl_client.Ok_ info -> pf "preload: %s <- %s (%s)\n%!" rel entry info
            | _ ->
              Printf.eprintf "datalog_serve: preload LOAD: unexpected reply\n";
              exit 1))
        entries

let serve listen storage threads flip_pending flip_interval max_pending
    max_clients check_phases data_dir durability wal_segment_mb program facts
    chaos flight serve_metrics serve_interval =
  let mon =
    Obs_cli.setup ~chaos ~flight ~serve_metrics ~serve_interval ()
  in
  Fun.protect ~finally:(fun () -> Obs_cli.teardown mon) @@ fun () ->
  match Storage.kind_of_name storage with
  | None ->
    Printf.eprintf
      "unknown storage kind %S (try: btree, btree-nohints, rbtree, hashset, \
       bplus, tbb)\n"
      storage;
    exit 2
  | Some kind -> (
    match Telemetry_server.parse_addr listen with
    | Error m ->
      Printf.eprintf "--listen: %s\n" m;
      exit 2
    | Ok addr -> (
      let durability =
        match Wal.durability_of_string durability with
        | Some d -> d
        | None ->
          Printf.eprintf "--durability: unknown mode %S (want %s)\n" durability
            Wal.durability_choices;
          exit 2
      in
      if data_dir = None && durability <> Wal.D_batch then begin
        Printf.eprintf "datalog_serve: --durability needs --data-dir\n";
        exit 2
      end;
      let base = Dl_server.default_config addr in
      let cfg =
        {
          base with
          Dl_server.kind;
          workers = (if threads <= 0 then base.Dl_server.workers else threads);
          flip_pending = max 1 flip_pending;
          flip_interval_ms = max 1 flip_interval;
          max_pending = max 1 max_pending;
          max_clients = max 1 max_clients;
          check_phases;
          data_dir;
          durability;
          wal_segment_bytes = max 1 wal_segment_mb * 1024 * 1024;
        }
      in
      match Dl_server.start cfg with
      | Error m ->
        Printf.eprintf "datalog_serve: %s\n" m;
        exit 1
      | Ok srv ->
        let bound = Dl_server.bound srv in
        pf
          "datalog_serve: listening on %s (storage=%s workers=%d \
           flip=%d facts/%d ms, pending cap %d, %d clients)\n\
           %!"
          (Telemetry_server.addr_to_string bound)
          (Storage.kind_name kind) cfg.Dl_server.workers
          cfg.Dl_server.flip_pending cfg.Dl_server.flip_interval_ms
          cfg.Dl_server.max_pending cfg.Dl_server.max_clients;
        (match data_dir with
        | Some dir ->
          pf "datalog_serve: durable in %s (durability=%s)\n%!" dir
            (Wal.durability_name durability)
        | None -> ());
        (match program with
        | Some file -> preload bound file facts
        | None ->
          if facts <> None then begin
            Printf.eprintf "datalog_serve: --facts needs --program\n";
            exit 2
          end);
        let on_signal _ = Dl_server.signal_stop srv in
        (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
         with _ -> ());
        (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
         with _ -> ());
        Dl_server.wait srv;
        pf "datalog_serve: stopped\n%!";
        if Chaos.active () then Format.printf "%a@." Chaos.pp_fired ()))

open Cmdliner

let listen_arg =
  Arg.(
    value & opt string "unix:datalog_serve.sock"
    & info [ "listen"; "l" ] ~docv:"ADDR"
        ~doc:
          "Listen address for the query protocol: $(b,unix:PATH), $(b,PORT) \
           (binds 127.0.0.1), or $(b,HOST:PORT); port 0 picks an ephemeral \
           port (printed at startup).")

let storage_arg =
  Arg.(
    value & opt string "btree"
    & info [ "storage"; "s" ] ~docv:"KIND"
        ~doc:
          "Relation storage of each engine generation: btree, btree-nohints, \
           rbtree, hashset, bplus, tbb.")

let threads_arg =
  Arg.(
    value & opt int 0
    & info [ "threads"; "j" ] ~docv:"N"
        ~doc:
          "Resident pool size, shared by evaluation and query fan-out \
           (default: recommended domain count).")

let flip_pending_arg =
  Arg.(
    value & opt int 256
    & info [ "flip-pending" ] ~docv:"N"
        ~doc:"Flip into a writer phase once this many facts are pending.")

let flip_interval_arg =
  Arg.(
    value & opt int 50
    & info [ "flip-interval" ] ~docv:"MS"
        ~doc:
          "Flip into a writer phase once the oldest pending ingest has \
           waited this long.")

let max_pending_arg =
  Arg.(
    value & opt int 100_000
    & info [ "max-pending" ] ~docv:"N"
        ~doc:
          "Admission cap: beyond this many pending facts, ingest is \
           rejected with a 503-style $(b,ERR busy) until the next flip.")

let max_clients_arg =
  Arg.(
    value & opt int 64
    & info [ "max-clients" ] ~docv:"N"
        ~doc:"Concurrent client sessions; further connects are refused.")

let check_phases_arg =
  Arg.(
    value & flag
    & info [ "check-phases" ]
        ~doc:
          "Assert the two-phase access discipline on every index during \
           evaluation (debug; raises Phase_violation on overlap).")

let data_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "data-dir"; "d" ] ~docv:"DIR"
        ~doc:
          "Durable fact store: write-ahead log every admission into $(docv) \
           (created if missing) and recover program + facts from it at \
           startup.  Without it the server is purely in-memory.")

let durability_arg =
  Arg.(
    value & opt string "batch"
    & info [ "durability" ] ~docv:"MODE"
        ~doc:
          "When acked ingest reaches disk: $(b,strict) fsyncs before every \
           ack, $(b,batch) (default) group-commits one fsync per generation \
           flip, $(b,async) fsyncs only on rotation/shutdown, $(b,none) \
           never fsyncs.  Needs $(b,--data-dir).")

let wal_segment_mb_arg =
  Arg.(
    value & opt int 8
    & info [ "wal-segment-mb" ] ~docv:"MB"
        ~doc:
          "Write-ahead log segment rotation threshold; the log compacts \
           into one snapshot segment when it outgrows a few segments.")

let program_arg =
  Arg.(
    value & opt (some file) None
    & info [ "program" ] ~docv:"PROGRAM.dl"
        ~doc:"Install this program at startup (through the client path).")

let facts_arg =
  Arg.(
    value & opt (some dir) None
    & info [ "facts"; "F" ] ~docv:"DIR"
        ~doc:
          "Batch-load $(docv)/<relation>.facts (TSV) at startup; needs \
           $(b,--program).")

let cmd =
  let doc =
    "serve resident Datalog: concurrent ingest/query sessions scheduled as \
     phase flips"
  in
  Cmd.v
    (Cmd.info "datalog_serve" ~doc)
    Term.(
      const serve $ listen_arg $ storage_arg $ threads_arg $ flip_pending_arg
      $ flip_interval_arg $ max_pending_arg $ max_clients_arg
      $ check_phases_arg $ data_dir_arg $ durability_arg $ wal_segment_mb_arg
      $ program_arg $ facts_arg $ Obs_cli.chaos_term
      $ Obs_cli.flight_term $ Obs_cli.serve_metrics_term
      $ Obs_cli.serve_interval_term)

let () = exit (Cmd.eval cmd)
