(* Chaos stress harness: randomized multi-domain schedules under active
   failpoints, with a full structural audit after every run.

     stress --seed 42 --domains 4 --runs 100

   Each run derives its own seed from the base seed and the run index and
   prints it, so any failing run replays deterministically:

     stress --seed 42 --domains 4 --replay 17

   Runs cycle through six scenarios:
     opt   — functor B-tree, optimistic descents under forced validation
             failures, descent yields and split delays;
     pess  — same workload with a zero restart budget, so every descent
             takes the pessimistic write-locked fallback;
     pool  — pool.job.raise armed: injected worker faults must surface as
             aggregated [Pool_failure]s (never a dead domain) and the tree
             must stay consistent for the workers that survived;
     tup   — the hand-specialized tuple B-tree under the same chaos mix;
     serve — a resident datalog_serve instance under connection drops and
             admission-busy faults, driven by concurrent client domains;
     wal   — durability drills: torn WAL appends (wal.write.short) must
             recover to the cleanly-appended prefix, and a kill -9 of a
             --durability strict server between acks must recover exactly
             the acked state.

   After every run the failpoints are disarmed and the tree is audited:
   [check_invariants] plus an exact cardinality check against the distinct
   keys of the slices whose workers completed (for serve: the acked facts
   against the served relation). *)

open Cmdliner
module T = Btree.Make (Key.Int)

let mix seed salt =
  let z = (seed + ((salt + 1) * 0x9E3779B9)) land max_int in
  let z = z lxor (z lsr 16) in
  let z = z * 0x85EBCA6B land max_int in
  let z = z lxor (z lsr 13) in
  if z = 0 then 0x2545F491 else z

let rng_next st =
  let r = !st in
  let r = r lxor (r lsl 13) land max_int in
  let r = r lxor (r lsr 7) in
  let r = r lxor (r lsl 17) land max_int in
  let r = if r = 0 then 0x2545F491 else r in
  st := r;
  r

let n_scenarios = 6

let scenario_name = function
  | 0 -> "opt"
  | 1 -> "pess"
  | 2 -> "pool"
  | 3 -> "tup"
  | 4 -> "serve"
  | _ -> "wal"

let tree_points = "olock.validate.force_fail:12+btree.descent.yield:6+btree.split.delay:6"
let pool_points = tree_points ^ "+pool.job.raise:4"
let serve_points = "server.conn.drop:12+server.phase.busy:6"
let wal_points = "wal.write.short:4"

(* Contiguous partition of [0, n) into [workers] near-equal slices. *)
let slice ~workers ~n w =
  let base = n / workers and extra = n mod workers in
  let lo = (w * base) + min w extra in
  (lo, lo + base + if w < extra then 1 else 0)

let distinct_sorted cmp arr =
  Array.sort cmp arr;
  let d = ref 0 in
  Array.iteri
    (fun i k -> if i = 0 || cmp arr.(i - 1) k <> 0 then incr d)
    arr;
  !d

exception Audit_failure of string

let failf fmt = Printf.ksprintf (fun m -> raise (Audit_failure m)) fmt

(* serve scenario: a resident server under connection drops and
   admission-busy faults.  Client domains assert disjoint facts with
   bounded retries (busy → back off, dropped connection → reconnect);
   chaos drops fire before a request is parsed, so an acked fact is always
   applied and an unacked one never is — the audit can demand the served
   relation equal the acked set exactly. *)
let serve_program =
  ".decl kv(a:number, b:number)\n.input kv\n\
   .decl out(a:number, b:number)\n.output out\n\
   out(x, y) :- kv(x, y).\n"

let serve_run ~domains ~nkeys ~seed r =
  ignore seed;
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stress-serve-%d-%d.sock" (Unix.getpid ()) r)
  in
  (try Sys.remove sock with Sys_error _ -> ());
  let addr =
    match Telemetry_server.parse_addr ("unix:" ^ sock) with
    | Ok a -> a
    | Error m -> failf "bad socket addr: %s" m
  in
  let cfg =
    {
      (Dl_server.default_config addr) with
      Dl_server.workers = 2;
      flip_pending = 64;
      flip_interval_ms = 5;
    }
  in
  match Dl_server.start cfg with
  | Error m -> failf "server start: %s" m
  | Ok srv ->
    let audit = ref (0, 0) in
    (try
       (* Install the program through a retry session.  The conn-drop
          failpoint severs connections before any buffered request is
          parsed, so retrying a transport fault over a fresh connection is
          safe (and RULES re-installation is idempotent regardless); an
          ERR reply is never retried by the session. *)
       (match
          Dl_client.with_retry ~attempts:20 ~backoff_ms:5.0 ~seed addr
            (fun sess ->
              Dl_client.retry sess (fun c -> Dl_client.rules c serve_program))
        with
       | Ok (Dl_client.Ok_ _) -> ()
       | Ok (Dl_client.Err (code, m)) -> failf "RULES: %s %s" code m
       | Ok _ -> failf "RULES: bad reply"
       | Error m -> failf "RULES: %s" m);
       (* Each client owns [lo, hi) of the key space; b is the client id,
          so every acked (a, b) is globally unique. *)
       let acked = Array.make domains [] in
       let give_ups = Array.make domains 0 in
       let clients =
         List.init domains (fun w ->
             Domain.spawn (fun () ->
                 let lo, hi = slice ~workers:domains ~n:nkeys w in
                 let sess =
                   Dl_client.session ~attempts:10 ~backoff_ms:5.0
                     ~seed:(mix seed w) addr
                 in
                 for i = lo to hi - 1 do
                   (* The session retries dropped connections internally;
                      ERR busy is the scheduler's answer, so the backoff
                      for it lives here in the workload, not the client. *)
                   let rec try_assert tries =
                     if tries <= 0 then give_ups.(w) <- give_ups.(w) + 1
                     else
                       match
                         Dl_client.retry sess (fun c ->
                             Dl_client.assert_fact c "kv"
                               [ string_of_int i; string_of_int w ])
                       with
                       | Ok (Dl_client.Ok_ _) -> acked.(w) <- i :: acked.(w)
                       | Ok (Dl_client.Err ("busy", _)) ->
                         Unix.sleepf 0.002;
                         try_assert (tries - 1)
                       | Ok _ -> give_ups.(w) <- give_ups.(w) + 1
                       | Error _ ->
                         (* connect/transport budget spent under chaos *)
                         give_ups.(w) <- give_ups.(w) + 1
                   in
                   try_assert 20;
                   if i land 31 = 0 then
                     ignore
                       (Dl_client.retry sess (fun c ->
                            Dl_client.query c "out" [ "_"; string_of_int w ])
                         : (Dl_client.reply, string) result)
                 done;
                 Dl_client.disconnect sess))
       in
       List.iter Domain.join clients;
       (* audit with the failpoints quiet *)
       Chaos.disable ();
       let expected =
         Array.to_list acked
         |> List.mapi (fun w keys ->
                List.map (fun i -> Printf.sprintf "%d\t%d" i w) keys)
         |> List.concat
       in
       let uncertain = Array.fold_left ( + ) 0 give_ups in
       (Dl_client.with_retry ~attempts:5 ~backoff_ms:5.0 addr @@ fun sess ->
        let rpc f = Dl_client.retry sess f in
        (match rpc (fun c -> Dl_client.query c "out" [ "_"; "_" ]) with
         | Ok (Dl_client.Data (_, rows)) ->
           let served = Hashtbl.create (List.length rows) in
           List.iter (fun row -> Hashtbl.replace served row ()) rows;
           List.iter
             (fun row ->
               if not (Hashtbl.mem served row) then
                 failf "acked fact %S missing from served relation" row)
             expected;
           let n_expected = List.length expected in
           let n_served = Hashtbl.length served in
           if n_served < n_expected || n_served > n_expected + uncertain
           then
             failf "served %d tuples, expected %d (+%d uncertain)" n_served
               n_expected uncertain
         | Ok (Dl_client.Err (code, m)) -> failf "audit query: %s %s" code m
         | Ok _ | Error _ -> failf "audit query: bad reply");
        (match rpc Dl_client.stats with
         | Ok (Dl_client.Data (_, lines)) ->
           List.iter
             (fun l ->
               match String.index_opt l '=' with
               | Some eq
                 when String.sub l 0 eq = "phase_violations"
                      && String.sub l (eq + 1) (String.length l - eq - 1)
                         <> "0" ->
                 failf "server reported %s" l
               | _ -> ())
             lines
         | Ok _ | Error _ -> failf "audit stats: bad reply");
        match rpc Dl_client.shutdown with
        | Ok (Dl_client.Ok_ _) -> ()
        | Ok _ | Error _ -> failf "shutdown: bad reply");
       audit := (List.length expected, 0)
     with e ->
       Dl_server.stop srv;
       raise e);
    Dl_server.stop srv;
    !audit

(* wal scenario: durability drills on throwaway data dirs.

   Phase 1 (wal.write.short armed): drive a {!Wal} directly, appending
   fact records until the failpoint tears one mid-write.  Reopening the
   dir must then recover exactly the cleanly-appended prefix — the torn
   tail silently truncated and flagged, never an error.

   Phase 2 (chaos quiet): crash-kill-recover differential.  A child
   process (this binary re-exec'd with the hidden --wal-child flag; a
   plain fork is forbidden once any domain has existed) serves a data
   dir under --durability strict; the parent acks facts over the
   protocol and SIGKILLs the child *between* acks, so the acked set is
   exactly the admitted set; a recovery server on the same dir must
   then serve exactly the acked facts. *)

let wal_child_cfg addr dir =
  {
    (Dl_server.default_config addr) with
    Dl_server.workers = 2;
    flip_pending = 8;
    flip_interval_ms = 5;
    data_dir = Some dir;
    durability = Wal.D_strict;
  }

(* --wal-child: the server half of the kill -9 drill, in its own process
   so SIGKILL hits a real crash boundary (no atexit, no flush). *)
let wal_child_main addr_s dir =
  match Telemetry_server.parse_addr addr_s with
  | Error m ->
    Printf.eprintf "--wal-child: %s\n" m;
    exit 2
  | Ok addr -> (
    match Dl_server.start (wal_child_cfg addr dir) with
    | Error m ->
      Printf.eprintf "wal child: %s\n" m;
      exit 3
    | Ok srv -> Dl_server.wait srv)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let wal_run ~nkeys ~seed r =
  let tmp = Filename.get_temp_dir_name () in
  let stamp = Printf.sprintf "%d-%d" (Unix.getpid ()) r in
  let st = ref (mix seed 0x3A1D) in
  (* ---- phase 1: torn-append/recover drill on a bare Wal ---- *)
  let dir1 = Filename.concat tmp ("stress-wal-torn-" ^ stamp) in
  rm_rf dir1;
  let appended = ref [] and torn = ref false in
  (match Wal.open_dir ~durability:Wal.D_none dir1 with
  | Error m -> failf "wal open: %s" m
  | Ok (w, rv0) ->
    if rv0.Wal.rv_entries <> [] then failf "fresh wal dir not empty";
    let budget = max 16 (min 64 nkeys) in
    for i = 0 to budget - 1 do
      if not !torn then
        let line = Printf.sprintf "%d\t%d" i (rng_next st mod 1000) in
        match Wal.append w (Wal.Facts ("kv", [ line ])) with
        | Ok () -> appended := line :: !appended
        | Error _ -> torn := true
    done;
    Wal.close w);
  (match Wal.open_dir ~durability:Wal.D_none dir1 with
  | Error m -> failf "wal reopen after torn tail: %s" m
  | Ok (w, rv) ->
    Wal.close w;
    let got =
      List.concat_map
        (function Wal.Facts (_, lines) -> lines | _ -> [])
        rv.Wal.rv_entries
    in
    if got <> List.rev !appended then
      failf "torn-tail recovery: %d records, expected %d" (List.length got)
        (List.length !appended);
    if !torn && not rv.Wal.rv_torn_tail then
      failf "torn tail not flagged by recovery");
  rm_rf dir1;
  Chaos.disable ();
  (* ---- phase 2: kill -9 a strict server between acks, recover ---- *)
  let dir2 = Filename.concat tmp ("stress-wal-srv-" ^ stamp) in
  let sock = Filename.concat tmp ("stress-wal-" ^ stamp ^ ".sock") in
  let rsock = Filename.concat tmp ("stress-wal-" ^ stamp ^ "-r.sock") in
  rm_rf dir2;
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ sock; rsock ];
  let parse p =
    match Telemetry_server.parse_addr ("unix:" ^ p) with
    | Ok a -> a
    | Error m -> failf "bad socket addr: %s" m
  in
  let addr = parse sock and raddr = parse rsock in
  let exe = Sys.executable_name in
  let pid =
    Unix.create_process exe
      [| exe; "--wal-child"; "unix:" ^ sock; "--wal-data"; dir2 |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let stop_server () =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid : int * Unix.process_status)
  in
  let acked = ref [] in
  (try
     Dl_client.with_retry ~attempts:40 ~backoff_ms:5.0 ~seed addr
     @@ fun sess ->
     (match
        Dl_client.retry sess (fun c -> Dl_client.rules c serve_program)
      with
     | Ok (Dl_client.Ok_ _) -> ()
     | Ok (Dl_client.Err (code, m)) -> failf "wal RULES: %s %s" code m
     | Ok _ -> failf "wal RULES: bad reply"
     | Error m -> failf "wal RULES: %s" m);
     let n = 16 + (rng_next st mod 48) in
     for i = 0 to n - 1 do
       let b = rng_next st mod 1000 in
       match
         Dl_client.retry sess (fun c ->
             Dl_client.assert_fact c "kv"
               [ string_of_int i; string_of_int b ])
       with
       | Ok (Dl_client.Ok_ _) ->
         acked := Printf.sprintf "%d\t%d" i b :: !acked
       | Ok (Dl_client.Err (code, m)) -> failf "wal ASSERT: %s %s" code m
       | Ok _ -> failf "wal ASSERT: bad reply"
       | Error m -> failf "wal ASSERT: %s" m
     done
   with e ->
     stop_server ();
     rm_rf dir2;
     raise e);
  (* every sent fact was acked; the kill lands between acks *)
  stop_server ();
  (try Sys.remove sock with Sys_error _ -> ());
  (match Dl_server.start (wal_child_cfg raddr dir2) with
  | Error m ->
    rm_rf dir2;
    failf "wal recovery start: %s" m
  | Ok srv ->
    (try
       (Dl_client.with_retry ~attempts:10 ~backoff_ms:5.0 raddr
        @@ fun sess ->
        match
          Dl_client.retry sess (fun c ->
              Dl_client.query c "out" [ "_"; "_" ])
        with
        | Ok (Dl_client.Data (_, rows)) ->
          let expected = List.sort compare !acked in
          let served = List.sort compare rows in
          if served <> expected then
            failf
              "strict recovery served %d tuples, acked %d (must be \
               byte-identical)"
              (List.length served) (List.length expected)
        | Ok (Dl_client.Err (code, m)) ->
          failf "wal recovery query: %s %s" code m
        | Ok _ -> failf "wal recovery query: bad reply"
        | Error m -> failf "wal recovery query: %s" m)
     with e ->
       Dl_server.stop srv;
       rm_rf dir2;
       raise e);
    Dl_server.stop srv);
  rm_rf dir2;
  (List.length !acked + List.length !appended, 0)

(* Run one scenario; returns (inserted keys audited, pool failures seen). *)
let one_run ~domains ~nkeys ~points_override ~seed r =
  let scen = r mod n_scenarios in
  let points =
    match points_override with
    | Some p -> p
    | None ->
      if scen = 2 then pool_points
      else if scen = 4 then serve_points
      else if scen = 5 then wal_points
      else tree_points
  in
  (match Chaos.apply_spec (Printf.sprintf "seed=%d,points=%s" seed points) with
  | Ok () -> ()
  | Error m ->
    Printf.eprintf "bad failpoint spec: %s\n%s\n" m Chaos.spec_help;
    exit 2);
  Olock.Backoff.set_seed seed;
  if scen = 4 then serve_run ~domains ~nkeys ~seed r
  else if scen = 5 then wal_run ~nkeys ~seed r
  else begin
  let capacity = 4 + (4 * (r mod 3)) in
  let key_range = max 64 (nkeys / 2) in
  let st = ref (mix seed 0xABCD) in
  let failures = ref 0 in
  let failed = Array.make domains false in
  let audit_keys = ref 0 in
  if scen <> 3 then begin
    (* functor tree over ints *)
    let keys = Array.init nkeys (fun _ -> rng_next st mod key_range) in
    let tree = T.create ~capacity () in
    if scen = 1 then T.set_restart_budget 0;
    Fun.protect
      ~finally:(fun () -> T.set_restart_budget 16)
      (fun () ->
        Pool.with_pool domains (fun pool ->
            if scen = 2 then Pool.set_watchdog pool 1;
            try
              Pool.run pool (fun w ->
                  let lo, hi = slice ~workers:domains ~n:nkeys w in
                  if (r + w) land 1 = 0 then begin
                    let s = T.session tree in
                    for i = lo to hi - 1 do
                      ignore (T.s_insert s keys.(i) : bool)
                    done
                  end
                  else begin
                    let run = Array.sub keys lo (hi - lo) in
                    Array.sort compare run;
                    ignore (T.insert_batch tree run : int)
                  end)
            with Pool.Pool_failure fs ->
              incr failures;
              List.iter
                (fun f ->
                  match f.Pool.f_exn with
                  | Chaos.Injected _ -> failed.(f.Pool.f_worker) <- true
                  | e ->
                    failf "worker %d died of a real error: %s"
                      f.Pool.f_worker (Printexc.to_string e))
                fs));
    Chaos.disable ();
    T.check_invariants tree;
    (* a failed worker was injected before its job body ran, so its whole
       slice is absent; every surviving slice must be fully present *)
    let survivors = ref [] in
    for w = domains - 1 downto 0 do
      if not failed.(w) then begin
        let lo, hi = slice ~workers:domains ~n:nkeys w in
        for i = hi - 1 downto lo do
          survivors := keys.(i) :: !survivors
        done
      end
    done;
    let surv = Array.of_list !survivors in
    let expected = distinct_sorted compare surv in
    let card = T.cardinal tree in
    if card <> expected then
      failf "cardinal %d, expected %d distinct surviving keys" card expected;
    Array.iter
      (fun k -> if not (T.mem tree k) then failf "surviving key %d missing" k)
      surv;
    audit_keys := Array.length surv
  end
  else begin
    (* hand-specialized tuple tree, arity 2 *)
    let keys =
      Array.init nkeys (fun _ ->
          [| rng_next st mod key_range; rng_next st mod 16 |])
    in
    let tree = Btree_tuples.create ~capacity ~arity:2 ~order:[| 0; 1 |] () in
    let cmp = Btree_tuples.compare_tuples tree in
    Pool.with_pool domains (fun pool ->
        try
          Pool.run pool (fun w ->
              let lo, hi = slice ~workers:domains ~n:nkeys w in
              if (r + w) land 1 = 0 then begin
                let s = Btree_tuples.session tree in
                for i = lo to hi - 1 do
                  ignore (Btree_tuples.s_insert s keys.(i) : bool)
                done
              end
              else begin
                let run = Array.sub keys lo (hi - lo) in
                Array.sort cmp run;
                ignore (Btree_tuples.insert_batch tree run : int)
              end)
        with Pool.Pool_failure fs ->
          incr failures;
          List.iter
            (fun f ->
              match f.Pool.f_exn with
              | Chaos.Injected _ -> failed.(f.Pool.f_worker) <- true
              | e ->
                failf "worker %d died of a real error: %s" f.Pool.f_worker
                  (Printexc.to_string e))
            fs);
    Chaos.disable ();
    Btree_tuples.check_invariants tree;
    let survivors = ref [] in
    for w = domains - 1 downto 0 do
      if not failed.(w) then begin
        let lo, hi = slice ~workers:domains ~n:nkeys w in
        for i = hi - 1 downto lo do
          survivors := keys.(i) :: !survivors
        done
      end
    done;
    let surv = Array.of_list !survivors in
    let expected = distinct_sorted cmp surv in
    let card = Btree_tuples.cardinal tree in
    if card <> expected then
      failf "cardinal %d, expected %d distinct surviving tuples" card expected;
    Array.iter
      (fun k ->
        if not (Btree_tuples.mem tree k) then
          failf "surviving tuple [%d,%d] missing" k.(0) k.(1))
      surv;
    audit_keys := Array.length surv
  end;
  (!audit_keys, !failures)
  end

(* --crash-demo: exercise the post-mortem path end to end.  Phase one
   runs a contended insert under forced validation failures so the rings
   hold real contention events; phase two arms [pool.job.raise:1] (every
   probe fires) and lets the resulting [Pool_failure] escape instead of
   containing it like the pool scenario does.  The handler drains every
   domain's ring into crashdump-<seed>.json and exits non-zero —
   tools/stress.sh --crashdump-selftest asserts the dump exists and that
   flightrec can parse it. *)
let crash_demo ~domains ~nkeys seed =
  let arm points =
    match
      Chaos.apply_spec (Printf.sprintf "seed=%d,points=%s" seed points)
    with
    | Ok () -> ()
    | Error m ->
      Printf.eprintf "bad failpoint spec: %s\n" m;
      exit 2
  in
  let st = ref (mix seed 0xC4A5) in
  let key_range = max 64 (nkeys / 2) in
  let keys = Array.init nkeys (fun _ -> rng_next st mod key_range) in
  let tree = T.create ~capacity:8 () in
  let insert_slices pool =
    Pool.run pool (fun w ->
        let lo, hi = slice ~workers:domains ~n:nkeys w in
        let s = T.session tree in
        for i = lo to hi - 1 do
          ignore (T.s_insert s keys.(i) : bool)
        done)
  in
  match
    Pool.with_pool domains (fun pool ->
        arm "olock.validate.force_fail:8+btree.descent.yield:6";
        insert_slices pool;
        arm "pool.job.raise:1";
        insert_slices pool)
  with
  | () ->
    Chaos.disable ();
    Printf.eprintf "crash demo: pool.job.raise:1 did not fire\n";
    exit 2
  | exception e ->
    Chaos.disable ();
    let path =
      Obs_cli.crash_dump
        ~extra:[ ("scenario", Telemetry.Json.String "crash-demo") ]
        e
    in
    Printf.printf "crash demo: induced %s\n" (Printexc.to_string e);
    Printf.printf "flight recorder: wrote %s (inspect with flightrec)\n" path;
    exit 1

let main base_seed domains runs nkeys points_override replay crash serve_metrics serve_interval wal_child wal_data =
  (match (wal_child, wal_data) with
  | Some addr_s, Some dir ->
    wal_child_main addr_s dir;
    exit 0
  | Some _, None | None, Some _ ->
    Printf.eprintf "--wal-child and --wal-data go together\n";
    exit 2
  | None, None -> ());
  let domains = max 1 domains in
  Telemetry.enable ();
  (* The recorder is always on under stress (the harness exists to shake
     out rare interleavings, and a failing run is worth a ring drain);
     chaos is armed per run, not from a flag.  Live observability for long
     drills: /health degrades while failpoints fire or watchdogs trip,
     /heat shows where the contention lands. *)
  let server =
    Obs_cli.setup ~chaos:None ~flight:true ~serve_metrics ~serve_interval ()
  in
  Fun.protect ~finally:(fun () -> Obs_cli.teardown server) @@ fun () ->
  if crash then crash_demo ~domains ~nkeys base_seed;
  let todo =
    match replay with
    | Some r when r >= 1 -> [ r - 1 ]
    | Some _ ->
      Printf.eprintf "--replay expects a 1-based run index\n";
      exit 2
    | None -> List.init runs Fun.id
  in
  let failures_total = ref 0 in
  let injected_jobs = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun r ->
      let seed = mix base_seed r in
      match one_run ~domains ~nkeys ~points_override ~seed r with
      | audited, pool_failures ->
        injected_jobs := !injected_jobs + pool_failures;
        Printf.printf "run %3d/%d scen=%-5s seed=0x%08x ok (audited=%d%s)\n%!"
          (r + 1) runs
          (scenario_name (r mod n_scenarios))
          seed audited
          (if pool_failures > 0 then
             Printf.sprintf ", contained pool failures=%d" pool_failures
           else "")
      | exception e ->
        Chaos.disable ();
        incr failures_total;
        Printf.printf "run %3d/%d scen=%-5s seed=0x%08x FAILED: %s\n" (r + 1)
          runs
          (scenario_name (r mod n_scenarios))
          seed (Printexc.to_string e);
        let dump =
          Obs_cli.crash_dump
            ~extra:
              [
                ( "scenario",
                  Telemetry.Json.String (scenario_name (r mod n_scenarios)) );
                ("run", Telemetry.Json.Int (r + 1));
              ]
            e
        in
        Printf.printf "flight recorder: wrote %s (inspect with flightrec)\n"
          dump;
        Printf.printf "replay: dune exec bin/stress.exe -- --seed %d \
                       --domains %d --keys %d --replay %d\n"
          base_seed domains nkeys (r + 1))
    todo;
  let snap = Telemetry.snapshot () in
  let g c = Telemetry.get snap c in
  Printf.printf
    "\n%d run(s) in %.1fs: %d failed; restarts=%d pessimistic_fallbacks=%d \
     watchdog_trips=%d contained_pool_failures=%d\n"
    (List.length todo)
    (Unix.gettimeofday () -. t0)
    !failures_total
    (g Telemetry.Counter.Btree_restarts)
    (g Telemetry.Counter.Btree_pessimistic_fallbacks)
    (g Telemetry.Counter.Pool_watchdog_trips)
    !injected_jobs;
  Telemetry.disable ();
  if !failures_total > 0 then exit 1

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
         ~doc:"Base seed; each run derives its own seed from it.")

let domains_arg =
  Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N"
         ~doc:"Worker domains per run.")

let runs_arg =
  Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N"
         ~doc:"Number of seeded runs.")

let keys_arg =
  Arg.(value & opt int 4000 & info [ "keys" ] ~docv:"N"
         ~doc:"Keys offered per run (shared key range forces contention).")

let points_arg =
  Arg.(value & opt (some string) None & info [ "points" ] ~docv:"POINTS"
         ~doc:"Override the per-scenario failpoint mix, e.g. \
               $(b,all:16) or $(b,olock.validate.force_fail:4).")

let replay_arg =
  Arg.(value & opt (some int) None & info [ "replay" ] ~docv:"RUN"
         ~doc:"Replay a single 1-based run index (same derived seed).")

let crash_arg =
  Arg.(value & flag & info [ "crash-demo" ]
         ~doc:"Induce an uncontained $(b,Pool_failure) (pool.job.raise:1), \
               write a flight-recorder crash dump, and exit non-zero.")

let serve_metrics_arg =
  Arg.(value & opt (some string) None & info [ "serve-metrics" ] ~docv:"ADDR"
         ~doc:"Serve live telemetry over HTTP/1.0 while the drill runs \
               (/metrics /snapshot.json /heat /health /trace).  $(docv) is \
               $(b,unix:PATH), $(b,PORT), or $(b,HOST:PORT); port 0 picks \
               an ephemeral port.")

let serve_interval_arg =
  Arg.(value & opt int 1000 & info [ "serve-interval" ] ~docv:"MS"
         ~doc:"Sampling window length for --serve-metrics, in milliseconds \
               (min 10).")

(* internal: the wal scenario's crash-target server (see wal_child_main) *)
let wal_child_arg =
  Arg.(value & opt (some string) None
       & info [ "wal-child" ] ~docv:"ADDR" ~docs:Manpage.s_none
           ~doc:"Internal: run the wal drill's kill target.")

let wal_data_arg =
  Arg.(value & opt (some string) None
       & info [ "wal-data" ] ~docv:"DIR" ~docs:Manpage.s_none
           ~doc:"Internal: data dir for $(b,--wal-child).")

let cmd =
  let doc = "stress the tree, locks and pool under deterministic fault injection" in
  Cmd.v (Cmd.info "stress" ~doc)
    Term.(
      const main $ seed_arg $ domains_arg $ runs_arg $ keys_arg $ points_arg
      $ replay_arg $ crash_arg $ serve_metrics_arg $ serve_interval_arg
      $ wal_child_arg $ wal_data_arg)

let () = exit (Cmd.eval cmd)
