(* Chaos stress harness: randomized multi-domain schedules under active
   failpoints, with a full structural audit after every run.

     stress --seed 42 --domains 4 --runs 100

   Each run derives its own seed from the base seed and the run index and
   prints it, so any failing run replays deterministically:

     stress --seed 42 --domains 4 --replay 17

   Runs cycle through four scenarios:
     opt   — functor B-tree, optimistic descents under forced validation
             failures, descent yields and split delays;
     pess  — same workload with a zero restart budget, so every descent
             takes the pessimistic write-locked fallback;
     pool  — pool.job.raise armed: injected worker faults must surface as
             aggregated [Pool_failure]s (never a dead domain) and the tree
             must stay consistent for the workers that survived;
     tup   — the hand-specialized tuple B-tree under the same chaos mix.

   After every run the failpoints are disarmed and the tree is audited:
   [check_invariants] plus an exact cardinality check against the distinct
   keys of the slices whose workers completed. *)

open Cmdliner
module T = Btree.Make (Key.Int)

let mix seed salt =
  let z = (seed + ((salt + 1) * 0x9E3779B9)) land max_int in
  let z = z lxor (z lsr 16) in
  let z = z * 0x85EBCA6B land max_int in
  let z = z lxor (z lsr 13) in
  if z = 0 then 0x2545F491 else z

let rng_next st =
  let r = !st in
  let r = r lxor (r lsl 13) land max_int in
  let r = r lxor (r lsr 7) in
  let r = r lxor (r lsl 17) land max_int in
  let r = if r = 0 then 0x2545F491 else r in
  st := r;
  r

let scenario_name = function
  | 0 -> "opt"
  | 1 -> "pess"
  | 2 -> "pool"
  | _ -> "tup"

let tree_points = "olock.validate.force_fail:12+btree.descent.yield:6+btree.split.delay:6"
let pool_points = tree_points ^ "+pool.job.raise:4"

(* Contiguous partition of [0, n) into [workers] near-equal slices. *)
let slice ~workers ~n w =
  let base = n / workers and extra = n mod workers in
  let lo = (w * base) + min w extra in
  (lo, lo + base + if w < extra then 1 else 0)

let distinct_sorted cmp arr =
  Array.sort cmp arr;
  let d = ref 0 in
  Array.iteri
    (fun i k -> if i = 0 || cmp arr.(i - 1) k <> 0 then incr d)
    arr;
  !d

exception Audit_failure of string

let failf fmt = Printf.ksprintf (fun m -> raise (Audit_failure m)) fmt

(* Run one scenario; returns (inserted keys audited, pool failures seen). *)
let one_run ~domains ~nkeys ~points_override ~seed r =
  let scen = r mod 4 in
  let points =
    match points_override with
    | Some p -> p
    | None -> if scen = 2 then pool_points else tree_points
  in
  (match Chaos.apply_spec (Printf.sprintf "seed=%d,points=%s" seed points) with
  | Ok () -> ()
  | Error m ->
    Printf.eprintf "bad failpoint spec: %s\n%s\n" m Chaos.spec_help;
    exit 2);
  Olock.Backoff.set_seed seed;
  let capacity = 4 + (4 * (r mod 3)) in
  let key_range = max 64 (nkeys / 2) in
  let st = ref (mix seed 0xABCD) in
  let failures = ref 0 in
  let failed = Array.make domains false in
  let audit_keys = ref 0 in
  if scen <> 3 then begin
    (* functor tree over ints *)
    let keys = Array.init nkeys (fun _ -> rng_next st mod key_range) in
    let tree = T.create ~capacity () in
    if scen = 1 then T.set_restart_budget 0;
    Fun.protect
      ~finally:(fun () -> T.set_restart_budget 16)
      (fun () ->
        Pool.with_pool domains (fun pool ->
            if scen = 2 then Pool.set_watchdog pool 1;
            try
              Pool.run pool (fun w ->
                  let lo, hi = slice ~workers:domains ~n:nkeys w in
                  if (r + w) land 1 = 0 then begin
                    let s = T.session tree in
                    for i = lo to hi - 1 do
                      ignore (T.s_insert s keys.(i) : bool)
                    done
                  end
                  else begin
                    let run = Array.sub keys lo (hi - lo) in
                    Array.sort compare run;
                    ignore (T.insert_batch tree run : int)
                  end)
            with Pool.Pool_failure fs ->
              incr failures;
              List.iter
                (fun f ->
                  match f.Pool.f_exn with
                  | Chaos.Injected _ -> failed.(f.Pool.f_worker) <- true
                  | e ->
                    failf "worker %d died of a real error: %s"
                      f.Pool.f_worker (Printexc.to_string e))
                fs));
    Chaos.disable ();
    T.check_invariants tree;
    (* a failed worker was injected before its job body ran, so its whole
       slice is absent; every surviving slice must be fully present *)
    let survivors = ref [] in
    for w = domains - 1 downto 0 do
      if not failed.(w) then begin
        let lo, hi = slice ~workers:domains ~n:nkeys w in
        for i = hi - 1 downto lo do
          survivors := keys.(i) :: !survivors
        done
      end
    done;
    let surv = Array.of_list !survivors in
    let expected = distinct_sorted compare surv in
    let card = T.cardinal tree in
    if card <> expected then
      failf "cardinal %d, expected %d distinct surviving keys" card expected;
    Array.iter
      (fun k -> if not (T.mem tree k) then failf "surviving key %d missing" k)
      surv;
    audit_keys := Array.length surv
  end
  else begin
    (* hand-specialized tuple tree, arity 2 *)
    let keys =
      Array.init nkeys (fun _ ->
          [| rng_next st mod key_range; rng_next st mod 16 |])
    in
    let tree = Btree_tuples.create ~capacity ~arity:2 ~order:[| 0; 1 |] () in
    let cmp = Btree_tuples.compare_tuples tree in
    Pool.with_pool domains (fun pool ->
        try
          Pool.run pool (fun w ->
              let lo, hi = slice ~workers:domains ~n:nkeys w in
              if (r + w) land 1 = 0 then begin
                let hints = Btree_tuples.make_hints () in
                for i = lo to hi - 1 do
                  ignore (Btree_tuples.insert ~hints tree keys.(i) : bool)
                done
              end
              else begin
                let run = Array.sub keys lo (hi - lo) in
                Array.sort cmp run;
                ignore (Btree_tuples.insert_batch tree run : int)
              end)
        with Pool.Pool_failure fs ->
          incr failures;
          List.iter
            (fun f ->
              match f.Pool.f_exn with
              | Chaos.Injected _ -> failed.(f.Pool.f_worker) <- true
              | e ->
                failf "worker %d died of a real error: %s" f.Pool.f_worker
                  (Printexc.to_string e))
            fs);
    Chaos.disable ();
    Btree_tuples.check_invariants tree;
    let survivors = ref [] in
    for w = domains - 1 downto 0 do
      if not failed.(w) then begin
        let lo, hi = slice ~workers:domains ~n:nkeys w in
        for i = hi - 1 downto lo do
          survivors := keys.(i) :: !survivors
        done
      end
    done;
    let surv = Array.of_list !survivors in
    let expected = distinct_sorted cmp surv in
    let card = Btree_tuples.cardinal tree in
    if card <> expected then
      failf "cardinal %d, expected %d distinct surviving tuples" card expected;
    Array.iter
      (fun k ->
        if not (Btree_tuples.mem tree k) then
          failf "surviving tuple [%d,%d] missing" k.(0) k.(1))
      surv;
    audit_keys := Array.length surv
  end;
  (!audit_keys, !failures)

(* --crash-demo: exercise the post-mortem path end to end.  Phase one
   runs a contended insert under forced validation failures so the rings
   hold real contention events; phase two arms [pool.job.raise:1] (every
   probe fires) and lets the resulting [Pool_failure] escape instead of
   containing it like the pool scenario does.  The handler drains every
   domain's ring into crashdump-<seed>.json and exits non-zero —
   tools/stress.sh --crashdump-selftest asserts the dump exists and that
   flightrec can parse it. *)
let crash_demo ~domains ~nkeys seed =
  let arm points =
    match
      Chaos.apply_spec (Printf.sprintf "seed=%d,points=%s" seed points)
    with
    | Ok () -> ()
    | Error m ->
      Printf.eprintf "bad failpoint spec: %s\n" m;
      exit 2
  in
  let st = ref (mix seed 0xC4A5) in
  let key_range = max 64 (nkeys / 2) in
  let keys = Array.init nkeys (fun _ -> rng_next st mod key_range) in
  let tree = T.create ~capacity:8 () in
  let insert_slices pool =
    Pool.run pool (fun w ->
        let lo, hi = slice ~workers:domains ~n:nkeys w in
        let s = T.session tree in
        for i = lo to hi - 1 do
          ignore (T.s_insert s keys.(i) : bool)
        done)
  in
  match
    Pool.with_pool domains (fun pool ->
        arm "olock.validate.force_fail:8+btree.descent.yield:6";
        insert_slices pool;
        arm "pool.job.raise:1";
        insert_slices pool)
  with
  | () ->
    Chaos.disable ();
    Printf.eprintf "crash demo: pool.job.raise:1 did not fire\n";
    exit 2
  | exception e ->
    Chaos.disable ();
    Telemetry_server.Health.note_uncontained (Printexc.to_string e);
    let path =
      Flight.write_crashdump ~reason:(Printexc.to_string e) ~seed
        ~extra:[ ("scenario", Telemetry.Json.String "crash-demo") ]
        ()
    in
    Printf.printf "crash demo: induced %s\n" (Printexc.to_string e);
    Printf.printf "flight recorder: wrote %s (inspect with flightrec)\n" path;
    exit 1

let main base_seed domains runs nkeys points_override replay crash serve_metrics serve_interval =
  let domains = max 1 domains in
  Telemetry.enable ();
  (* The recorder is always on under stress: the harness exists to shake
     out rare interleavings, and a failing run is worth a ring drain. *)
  Flight.enable ();
  Chaos.set_fire_hook
    (Some
       (fun p -> Flight.record Flight.Ev.Chaos_fire (Chaos.Point.index p) 0 0));
  (* Live observability for long drills: /health degrades while failpoints
     fire or watchdogs trip, /heat shows where the contention lands. *)
  let server =
    match serve_metrics with
    | None -> None
    | Some addr_s -> (
      match Telemetry_server.parse_addr addr_s with
      | Error m ->
        Printf.eprintf "--serve-metrics: %s\n" m;
        exit 2
      | Ok addr -> (
        Telemetry_server.set_chaos_probe
          (Some (fun () -> (Chaos.active (), Chaos.total_fired ())));
        match Telemetry_server.start ~interval_ms:serve_interval addr with
        | Error m ->
          Printf.eprintf "--serve-metrics: %s\n" m;
          exit 2
        | Ok srv ->
          Printf.printf
            "serving telemetry on %s (/metrics /snapshot.json /heat /health \
             /trace)\n\
             %!"
            (Telemetry_server.addr_to_string (Telemetry_server.bound srv));
          Some srv))
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Telemetry_server.stop server)
  @@ fun () ->
  if crash then crash_demo ~domains ~nkeys base_seed;
  let todo =
    match replay with
    | Some r when r >= 1 -> [ r - 1 ]
    | Some _ ->
      Printf.eprintf "--replay expects a 1-based run index\n";
      exit 2
    | None -> List.init runs Fun.id
  in
  let failures_total = ref 0 in
  let injected_jobs = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun r ->
      let seed = mix base_seed r in
      match one_run ~domains ~nkeys ~points_override ~seed r with
      | audited, pool_failures ->
        injected_jobs := !injected_jobs + pool_failures;
        Printf.printf "run %3d/%d scen=%-4s seed=0x%08x ok (audited=%d%s)\n"
          (r + 1) runs (scenario_name (r mod 4)) seed audited
          (if pool_failures > 0 then
             Printf.sprintf ", contained pool failures=%d" pool_failures
           else "")
      | exception e ->
        Chaos.disable ();
        Telemetry_server.Health.note_uncontained (Printexc.to_string e);
        incr failures_total;
        Printf.printf "run %3d/%d scen=%-4s seed=0x%08x FAILED: %s\n" (r + 1)
          runs (scenario_name (r mod 4)) seed (Printexc.to_string e);
        let dump =
          Flight.write_crashdump ~reason:(Printexc.to_string e) ~seed
            ~extra:
              [
                ("scenario", Telemetry.Json.String (scenario_name (r mod 4)));
                ("run", Telemetry.Json.Int (r + 1));
              ]
            ()
        in
        Printf.printf "flight recorder: wrote %s (inspect with flightrec)\n"
          dump;
        Printf.printf "replay: dune exec bin/stress.exe -- --seed %d \
                       --domains %d --keys %d --replay %d\n"
          base_seed domains nkeys (r + 1))
    todo;
  let snap = Telemetry.snapshot () in
  let g c = Telemetry.get snap c in
  Printf.printf
    "\n%d run(s) in %.1fs: %d failed; restarts=%d pessimistic_fallbacks=%d \
     watchdog_trips=%d contained_pool_failures=%d\n"
    (List.length todo)
    (Unix.gettimeofday () -. t0)
    !failures_total
    (g Telemetry.Counter.Btree_restarts)
    (g Telemetry.Counter.Btree_pessimistic_fallbacks)
    (g Telemetry.Counter.Pool_watchdog_trips)
    !injected_jobs;
  Telemetry.disable ();
  if !failures_total > 0 then exit 1

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
         ~doc:"Base seed; each run derives its own seed from it.")

let domains_arg =
  Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N"
         ~doc:"Worker domains per run.")

let runs_arg =
  Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N"
         ~doc:"Number of seeded runs.")

let keys_arg =
  Arg.(value & opt int 4000 & info [ "keys" ] ~docv:"N"
         ~doc:"Keys offered per run (shared key range forces contention).")

let points_arg =
  Arg.(value & opt (some string) None & info [ "points" ] ~docv:"POINTS"
         ~doc:"Override the per-scenario failpoint mix, e.g. \
               $(b,all:16) or $(b,olock.validate.force_fail:4).")

let replay_arg =
  Arg.(value & opt (some int) None & info [ "replay" ] ~docv:"RUN"
         ~doc:"Replay a single 1-based run index (same derived seed).")

let crash_arg =
  Arg.(value & flag & info [ "crash-demo" ]
         ~doc:"Induce an uncontained $(b,Pool_failure) (pool.job.raise:1), \
               write a flight-recorder crash dump, and exit non-zero.")

let serve_metrics_arg =
  Arg.(value & opt (some string) None & info [ "serve-metrics" ] ~docv:"ADDR"
         ~doc:"Serve live telemetry over HTTP/1.0 while the drill runs \
               (/metrics /snapshot.json /heat /health /trace).  $(docv) is \
               $(b,unix:PATH), $(b,PORT), or $(b,HOST:PORT); port 0 picks \
               an ephemeral port.")

let serve_interval_arg =
  Arg.(value & opt int 1000 & info [ "serve-interval" ] ~docv:"MS"
         ~doc:"Sampling window length for --serve-metrics, in milliseconds \
               (min 10).")

let cmd =
  let doc = "stress the tree, locks and pool under deterministic fault injection" in
  Cmd.v (Cmd.info "stress" ~doc)
    Term.(
      const main $ seed_arg $ domains_arg $ runs_arg $ keys_arg $ points_arg
      $ replay_arg $ crash_arg $ serve_metrics_arg $ serve_interval_arg)

let () = exit (Cmd.eval cmd)
