(* Emit the synthetic benchmark workloads as Soufflé-style fact directories,
   so they can be fed back through the CLI:

     dune exec bin/generate_facts.exe -- pointsto /tmp/pt --scale 0.5
     dune exec bin/datalog_cli.exe -- pt.dl --facts /tmp/pt ...

   Also writes the matching Datalog program next to the facts as
   <workload>.dl. *)

open Cmdliner

let compare_tuples a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then compare (Array.length a) (Array.length b)
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let write_facts ~sorted dir facts =
  let channels : (string, out_channel) Hashtbl.t = Hashtbl.create 8 in
  let chan rel =
    match Hashtbl.find_opt channels rel with
    | Some oc -> oc
    | None ->
      let oc = open_out (Filename.concat dir (rel ^ ".facts")) in
      Hashtbl.add channels rel oc;
      oc
  in
  let facts =
    if not sorted then facts
    else begin
      (* per-relation lexicographic tuple order: sorted fact files let the
         loader's batch merge skip its own sort (the pre-sorted fast path
         of Storage.Index.merge) *)
      let groups : (string, int array list ref) Hashtbl.t = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (fun (rel, tup) ->
          match Hashtbl.find_opt groups rel with
          | Some l -> l := tup :: !l
          | None ->
            order := rel :: !order;
            Hashtbl.add groups rel (ref [ tup ]))
        facts;
      List.concat_map
        (fun rel ->
          let arr = Array.of_list !(Hashtbl.find groups rel) in
          Array.sort compare_tuples arr;
          Array.to_list (Array.map (fun tup -> (rel, tup)) arr))
        (List.rev !order)
    end
  in
  List.iter
    (fun (rel, tup) ->
      let oc = chan rel in
      output_string oc
        (String.concat "\t" (Array.to_list (Array.map string_of_int tup)));
      output_char oc '\n')
    facts;
  let counts =
    Hashtbl.fold (fun rel _ acc -> rel :: acc) channels []
  in
  Hashtbl.iter (fun _ oc -> close_out oc) channels;
  counts

(* Ast.pp_program prints a debug form; emit re-parseable syntax instead. *)
let write_program dir name (prog : Ast.program) =
  let oc = open_out (Filename.concat dir (name ^ ".dl")) in
  List.iter
    (fun (d : Ast.decl) ->
      let fields =
        String.concat ", "
          (List.init d.arity (fun i -> Printf.sprintf "c%d:number" i))
      in
      Printf.fprintf oc ".decl %s(%s)\n" d.name fields;
      if d.is_input then Printf.fprintf oc ".input %s\n" d.name;
      if d.is_output then Printf.fprintf oc ".output %s\n" d.name)
    prog.decls;
  List.iter
    (fun r -> Printf.fprintf oc "%s\n" (Format.asprintf "%a" Ast.pp_rule r))
    prog.rules;
  close_out oc

let generate workload dir scale seed sorted =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let facts, prog, name =
    match workload with
    | "pointsto" ->
      let cfg = Pointsto_gen.scaled scale in
      ( Pointsto_gen.facts cfg (Rng.create seed),
        Pointsto_gen.program cfg,
        "pointsto" )
    | "network" ->
      let cfg = Network_gen.scaled scale in
      (Network_gen.facts cfg (Rng.create seed), Network_gen.program, "network")
    | other ->
      Printf.eprintf "unknown workload %S (try: pointsto, network)\n" other;
      exit 2
  in
  let rels = write_facts ~sorted dir facts in
  write_program dir name prog;
  Printf.printf "wrote %d%s facts across %s into %s (program: %s.dl)\n"
    (List.length facts)
    (if sorted then " sorted" else "")
    (String.concat ", " (List.sort compare rels))
    dir name

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
         ~doc:"pointsto or network")

let dir_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"F"
         ~doc:"Workload size multiplier.")

let seed_arg =
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let sorted_arg =
  Arg.(value & flag
       & info [ "sorted" ]
           ~doc:
             "Write each relation's facts in lexicographic tuple order, so \
              loading hits the batch write path's pre-sorted fast case.")

let cmd =
  let doc = "emit synthetic Datalog workloads as TSV fact directories" in
  Cmd.v
    (Cmd.info "generate_facts" ~doc)
    Term.(
      const generate $ workload_arg $ dir_arg $ scale_arg $ seed_arg
      $ sorted_arg)

let () = exit (Cmd.eval cmd)
