(* Command-line Datalog runner: evaluate a .dl file with a chosen relation
   storage and thread count, print output relation sizes or contents.

     datalog_cli run program.dl --storage btree --threads 4 --print path
*)

open Cmdliner

let write_prometheus engine snap path =
  let prom = Telemetry.Prom.create () in
  Telemetry.prometheus_of_snapshot prom snap;
  List.iter
    (fun (rel, sh) ->
      let labels = [ ("relation", rel) ] in
      let g ~help name v = Telemetry.Prom.gauge prom ~help ~labels name v in
      g ~help:"B-tree height of a relation's primary index."
        "repro_btree_shape_height"
        (float_of_int sh.Tree_shape.height);
      g ~help:"B-tree node count of a relation's primary index."
        "repro_btree_shape_nodes"
        (float_of_int sh.Tree_shape.nodes);
      g ~help:"B-tree leaf count of a relation's primary index."
        "repro_btree_shape_leaves"
        (float_of_int sh.Tree_shape.leaves);
      g ~help:"Elements stored in a relation's primary index."
        "repro_btree_shape_elements"
        (float_of_int sh.Tree_shape.elements);
      g ~help:"Average node fill factor of a relation's primary index."
        "repro_btree_shape_fill" sh.Tree_shape.fill;
      Array.iteri
        (fun d n ->
          if n > 0 then
            Telemetry.Prom.gauge prom
              ~help:"Nodes per 10%-of-capacity fill band."
              ~labels:(("decile", string_of_int d) :: labels)
              "repro_btree_shape_fill_nodes" (float_of_int n))
        sh.Tree_shape.fill_deciles)
    (Engine.tree_shapes engine);
  (match Engine.hint_run_hist engine with
  | Some runs ->
    Array.iteri
      (fun b n ->
        if n > 0 then
          Telemetry.Prom.gauge prom
            ~help:"Hint hit-run lengths (log2 buckets)."
            ~labels:[ ("bucket", string_of_int b) ]
            "repro_btree_hint_runs" (float_of_int n))
      runs
  | None -> ());
  (* Contention heatmap from the flight recorder, when it ran. *)
  (if Flight.enabled () then
     let heat = Tree_shape.heat_of_events (Flight.events ()) in
     List.iter
       (fun ((level, bucket), counts) ->
         Array.iteri
           (fun cls n ->
             if n > 0 then
               Telemetry.Prom.counter prom
                 ~help:
                   "Flight-recorder contention events by tree level and \
                    root-child key bucket (level/bucket -1 = hinted leaf)."
                 ~labels:
                   [
                     ("class", Tree_shape.heat_classes.(cls));
                     ("level", string_of_int level);
                     ("bucket", string_of_int bucket);
                   ]
                 "repro_contention_events_total" (float_of_int n))
           counts)
       heat.Tree_shape.heat_cells;
     Telemetry.Prom.counter prom
       ~help:"Flight-recorder root restarts (untagged)."
       "repro_contention_restarts_total"
       (float_of_int heat.Tree_shape.heat_restarts);
     Telemetry.Prom.counter prom
       ~help:"Flight-recorder pessimistic fallbacks (untagged)."
       "repro_contention_fallbacks_total"
       (float_of_int heat.Tree_shape.heat_fallbacks);
     Telemetry.Prom.counter prom
       ~help:"Summed contended write-lock wait observed by the recorder."
       "repro_contention_lock_wait_seconds_total"
       (float_of_int heat.Tree_shape.heat_lock_wait_ns /. 1e9));
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Telemetry.Prom.to_string prom))

(* ------------------------------------------------------------------- *)
(* Remote mode (--connect): drive a resident datalog_serve instance     *)
(* through the Dl_client line protocol instead of evaluating locally.   *)
(* ------------------------------------------------------------------- *)

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remote_fail ctx = function
  | Error m ->
    Printf.eprintf "datalog_cli: %s: %s\n" ctx m;
    exit 1
  | Ok (Dl_client.Err (code, msg)) ->
    Printf.eprintf "datalog_cli: %s: ERR %s %s\n" ctx code msg;
    exit 1
  | Ok r -> r

let run_remote addr_s file facts_dir print_rels output_dir do_shutdown =
  match Telemetry_server.parse_addr addr_s with
  | Error m ->
    Printf.eprintf "--connect: %s\n" m;
    exit 2
  | Ok addr ->
    (* A retry session instead of one connect: transient connection faults
       (server restarting after a crash-recover, socket hiccup) are retried
       with backoff; structured ERR replies still fail fast. *)
    Dl_client.with_retry ~attempts:5 ~backoff_ms:50.0 addr @@ fun sess ->
    let rpc ctx f = remote_fail ctx (Dl_client.retry sess f) in
    (match file with
      | None ->
        if not do_shutdown then begin
          Printf.eprintf
            "datalog_cli: --connect needs a program (or --shutdown)\n";
          exit 2
        end
      | Some f ->
        (* Parse locally too: the decls give us the output relations and
           their arities for the wildcard queries below. *)
        let prog =
          match Parser.parse_file f with
          | p -> p
          | exception Parser.Syntax_error { line; col; message } ->
            Printf.eprintf "%s:%d:%d: syntax error: %s\n" f line col message;
            exit 1
        in
        (match rpc "RULES" (fun c -> Dl_client.rules c (read_whole_file f)) with
        | Dl_client.Ok_ info -> Printf.printf "installed: %s\n" info
        | _ ->
          Printf.eprintf "datalog_cli: RULES: unexpected reply\n";
          exit 1);
        (match facts_dir with
        | None -> ()
        | Some dir ->
          let entries = Sys.readdir dir in
          Array.sort compare entries;
          Array.iter
            (fun entry ->
              match Filename.chop_suffix_opt ~suffix:".facts" entry with
              | None -> ()
              | Some rel ->
                let rows =
                  read_whole_file (Filename.concat dir entry)
                  |> String.split_on_char '\n'
                  |> List.filter (fun l -> String.trim l <> "")
                in
                (match
                   rpc ("LOAD " ^ rel) (fun c -> Dl_client.load c rel rows)
                 with
                | Dl_client.Ok_ info ->
                  Printf.printf "loaded %d facts into %s (%s)\n"
                    (List.length rows) rel info
                | _ ->
                  Printf.eprintf "datalog_cli: LOAD: unexpected reply\n";
                  exit 1))
            entries);
        let outputs =
          match
            List.filter (fun d -> d.Ast.is_output) prog.Ast.decls
          with
          | [] -> prog.Ast.decls
          | l -> l
        in
        List.iter
          (fun (d : Ast.decl) ->
            let pats = List.init d.Ast.arity (fun _ -> "_") in
            match
              rpc ("QUERY " ^ d.Ast.name) (fun c ->
                  Dl_client.query c d.Ast.name pats)
            with
            | Dl_client.Data (_, rows) ->
              Printf.printf "%s: %d tuples\n" d.Ast.name (List.length rows);
              if List.mem d.Ast.name print_rels then begin
                Printf.printf "--- %s ---\n" d.Ast.name;
                List.iter print_endline rows
              end;
              (match output_dir with
              | None -> ()
              | Some dir ->
                let path = Filename.concat dir (d.Ast.name ^ ".csv") in
                let oc = open_out path in
                Fun.protect
                  ~finally:(fun () -> close_out_noerr oc)
                  (fun () ->
                    List.iter
                      (fun row ->
                        output_string oc row;
                        output_char oc '\n')
                      rows);
                Printf.printf "wrote %d tuples to %s\n" (List.length rows)
                  path)
            | _ ->
              Printf.eprintf "datalog_cli: QUERY: unexpected reply\n";
              exit 1)
          outputs);
      if do_shutdown then
        match rpc "SHUTDOWN" Dl_client.shutdown with
        | Dl_client.Ok_ _ -> Printf.printf "server draining\n"
        | _ ->
          Printf.eprintf "datalog_cli: SHUTDOWN: unexpected reply\n";
          exit 1

let run_program file storage threads print_rels show_stats show_profile facts_dir output_dir trace_file metrics_file chaos_spec flight lenient serve_metrics serve_interval connect do_shutdown =
  let server =
    Obs_cli.setup ~chaos:chaos_spec ~flight ~serve_metrics ~serve_interval ()
  in
  Fun.protect ~finally:(fun () -> Obs_cli.teardown server) @@ fun () ->
  match connect with
  | Some addr_s ->
    run_remote addr_s file facts_dir print_rels output_dir do_shutdown
  | None -> (
  let file =
    match file with
    | Some f -> f
    | None ->
      Printf.eprintf "datalog_cli: a PROGRAM.dl argument is required\n";
      exit 2
  in
  match Storage.kind_of_name storage with
  | None ->
    Printf.eprintf "unknown storage kind %S (try: btree, btree-nohints, \
                    rbtree, hashset, bplus, tbb)\n" storage;
    exit 2
  | Some kind -> (
    match Parser.parse_file file with
    | exception Parser.Syntax_error { line; col; message } ->
      Printf.eprintf "%s:%d:%d: syntax error: %s\n" file line col message;
      exit 1
    | prog -> (
      match Engine.create ~kind ~instrument:show_stats ~profile:show_profile prog with
      | exception Plan.Compile_error m ->
        Printf.eprintf "%s: compile error: %s\n" file m;
        exit 1
      | exception Stratify.Not_stratifiable m ->
        Printf.eprintf "%s: not stratifiable: %s\n" file m;
        exit 1
      | engine ->
        (* Telemetry: counters whenever --stats or --metrics is on, tracing
           when a --trace file was requested; the three combine freely.
           Enabled before fact loading so lenient-mode skip counts land in
           the snapshot. *)
        if show_stats || trace_file <> None || metrics_file <> None then
          Telemetry.enable ~tracing:(trace_file <> None) ();
        (* Live gauges for the scrape windows: Dl_stats are Sync counters,
           so reading them mid-evaluation is safe (no tree traversal). *)
        if server <> None && show_stats then
          Telemetry_server.register_gauges "datalog" (fun () ->
              match Engine.stats engine with
              | None -> []
              | Some s ->
                [
                  ("inserts", float_of_int s.Dl_stats.s_inserts);
                  ("mem_tests", float_of_int s.Dl_stats.s_mem_tests);
                  ("produced_tuples", float_of_int s.Dl_stats.s_produced_tuples);
                  ("input_tuples", float_of_int s.Dl_stats.s_input_tuples);
                ]);
        (match facts_dir with
        | Some dir -> (
          match Dl_io.load_facts_dir ~lenient engine dir with
          | loaded ->
            List.iter
              (fun (rel, n) -> Printf.printf "loaded %d facts into %s\n" n rel)
              loaded
          | exception (Dl_io.Parse_error _ as e) ->
            Printf.eprintf "%s\n" (Printexc.to_string e);
            exit 1)
        | None -> ());
        let t0 = Bench_util.wall () in
        (* Post-mortem evidence: a pool failure, watchdog-flagged job or any
           uncaught exception drains the flight rings into a crash dump
           before the error propagates. *)
        (try Pool.with_pool threads (fun pool -> Engine.run engine pool)
         with e when Flight.enabled () ->
           let path =
             Obs_cli.crash_dump
               ~extra:
                 [
                   ("program", Telemetry.Json.String file);
                   ("chaos", Telemetry.Json.Bool (Chaos.active ()));
                 ]
               e
           in
           Printf.eprintf "flight recorder: wrote %s (inspect with flightrec)\n"
             path;
           raise e);
        let elapsed = Bench_util.wall () -. t0 in
        let telemetry_snap =
          if Telemetry.enabled () then Some (Telemetry.snapshot ()) else None
        in
        (match trace_file with
        | Some f -> (
          match
            Telemetry.export_trace
              ~process_name:
                (Printf.sprintf "datalog_cli %s" (Filename.basename file))
              f
          with
          | () ->
            Printf.printf
              "wrote %d trace events to %s (open in ui.perfetto.dev)\n"
              (Telemetry.event_count ()) f
          | exception Sys_error m ->
            Printf.eprintf "cannot write trace: %s\n" m;
            exit 1)
        | None -> ());
        (match (metrics_file, telemetry_snap) with
        | Some f, Some snap -> (
          match write_prometheus engine snap f with
          | () -> Printf.printf "wrote Prometheus metrics to %s\n" f
          | exception Sys_error m ->
            Printf.eprintf "cannot write metrics: %s\n" m;
            exit 1)
        | _ -> ());
        Telemetry.disable ();
        let outputs =
          match Engine.output_relations engine with
          | [] -> Engine.relations engine
          | l -> l
        in
        List.iter
          (fun name ->
            Printf.printf "%s: %d tuples\n" name (Engine.relation_size engine name))
          outputs;
        List.iter
          (fun name ->
            Printf.printf "--- %s ---\n" name;
            Engine.iter_relation engine name (fun tup ->
                print_endline
                  (String.concat "\t"
                     (Array.to_list (Array.map string_of_int tup)))))
          print_rels;
        (match output_dir with
        | Some dir ->
          List.iter
            (fun (rel, n) ->
              Printf.printf "wrote %d tuples to %s\n" n
                (Filename.concat dir (rel ^ ".csv")))
            (Dl_io.write_outputs engine ~dir)
        | None -> ());
        if show_stats then begin
          (match Engine.stats engine with
          | Some s -> Format.printf "stats: %a@." Dl_stats.pp s
          | None -> ());
          (match telemetry_snap with
          | Some snap -> Format.printf "%a@." Telemetry.pp_snapshot snap
          | None -> ());
          (match Engine.tree_shapes engine with
          | [] -> ()
          | shapes ->
            Format.printf "tree shape (primary indexes):@.";
            List.iter
              (fun (rel, sh) ->
                Format.printf "  %-14s %a@." rel Tree_shape.pp sh)
              shapes);
          (match Engine.hint_run_hist engine with
          | Some runs when Array.exists (fun n -> n > 0) runs ->
            Format.printf
              "hint locality (hit-run lengths, log2 buckets): [%s]@."
              (String.concat " "
                 (Array.to_list (Array.map string_of_int runs)))
          | _ -> ());
          if Flight.enabled () then
            Format.printf "contention heatmap (flight recorder):@.%a@."
              Tree_shape.pp_heat
              (Tree_shape.heat_of_events (Flight.events ()))
        end;
        if Chaos.active () then
          Format.printf "%a@." Chaos.pp_fired ();
        if show_profile then begin
          print_endline "rule profile (hottest first):";
          List.iter
            (fun (p : Eval.rule_profile) ->
              Printf.printf "  %8.3fs  %4d evals  %s%s\n" p.Eval.rp_seconds
                p.Eval.rp_evaluations
                (if p.Eval.rp_delta then "[delta] " else "[seed]  ")
                p.Eval.rp_rule)
            (Engine.rule_profile engine)
        end;
        Printf.printf "evaluated in %.3fs (%d iterations, storage=%s, threads=%d)\n"
          elapsed (Engine.iterations engine) (Storage.kind_name kind) threads)))

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"PROGRAM.dl")

let storage_arg =
  Arg.(value & opt string "btree" & info [ "storage"; "s" ] ~docv:"KIND"
         ~doc:"Relation storage: btree, btree-nohints, rbtree, hashset, bplus, tbb.")

let threads_arg =
  Arg.(value & opt int 1 & info [ "threads"; "j" ] ~docv:"N"
         ~doc:"Worker domains for parallel evaluation.")

let print_arg =
  Arg.(value & opt_all string [] & info [ "print"; "p" ] ~docv:"RELATION"
         ~doc:"Print the contents of this relation (repeatable).")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print operation statistics (Table 2 counters).")

let profile_arg =
  Arg.(value & flag & info [ "profile" ] ~doc:"Print per-rule evaluation times.")

let facts_arg =
  Arg.(value & opt (some dir) None & info [ "facts"; "F" ] ~docv:"DIR"
         ~doc:"Load <DIR>/<relation>.facts (TSV) for every input relation.")

let output_arg =
  Arg.(value & opt (some dir) None & info [ "output"; "D" ] ~docv:"DIR"
         ~doc:"Write every output relation to <DIR>/<relation>.csv (TSV).")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON of the evaluation to $(docv) \
               (load it in ui.perfetto.dev or chrome://tracing).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write Prometheus text-format metrics (counters, latency \
               histograms, tree shape) to $(docv).  Combines with --stats \
               and --trace.")

let lenient_arg =
  Arg.(value & flag & info [ "lenient" ]
         ~doc:"Skip (and count, see io.malformed_lines in --stats/--metrics) \
               malformed fact lines instead of aborting the load.")

let connect_arg =
  Arg.(value & opt (some string) None & info [ "connect"; "c" ] ~docv:"ADDR"
         ~doc:"Run against a resident $(b,datalog_serve) instance at $(docv) \
               ($(b,unix:PATH), $(b,PORT), or $(b,HOST:PORT)) instead of \
               evaluating locally: install PROGRAM.dl, batch-load --facts, \
               then query every output relation ($(b,--print) and \
               $(b,--output) apply to the served results).")

let shutdown_arg =
  Arg.(value & flag & info [ "shutdown" ]
         ~doc:"With --connect: ask the server to drain and exit afterwards \
               (with no PROGRAM.dl, just send the shutdown).")

let cmd =
  let doc = "evaluate a Datalog program with the specialized concurrent B-tree engine" in
  Cmd.v
    (Cmd.info "datalog_cli" ~doc)
    Term.(
      const run_program $ file_arg $ storage_arg $ threads_arg $ print_arg
      $ stats_arg $ profile_arg $ facts_arg $ output_arg $ trace_arg
      $ metrics_arg $ Obs_cli.chaos_term $ Obs_cli.flight_term $ lenient_arg
      $ Obs_cli.serve_metrics_term $ Obs_cli.serve_interval_term
      $ connect_arg $ shutdown_arg)

let () = exit (Cmd.eval cmd)
