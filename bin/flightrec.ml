(* Flight-recorder dump inspector.

   Loads a crash dump ([crashdump-<seed>.json], written by the bench /
   stress / datalog_cli failure handlers) or a live Chrome trace
   (--trace output, whose cat:"flight" instants are recorder events) and
   prints what the rings captured: the per-level contention table with
   the hottest tree level, a merged cross-domain event timeline, and a
   GC-overlap summary attributing contention events to collection
   pauses. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* ------------------------------------------------------------------ *)
(* Loading: crash dump or Chrome trace                                *)
(* ------------------------------------------------------------------ *)

type source = {
  src_kind : string; (* "crash dump" | "chrome trace" *)
  src_reason : string option;
  src_seed : int option;
  src_counters : (string * Telemetry.Json.t) list;
  src_dropped : (int * int) list; (* per-domain dropped counts, if known *)
  src_events : Flight.event list; (* merged, oldest first *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let source_of_dump (d : Flight.dump) =
  {
    src_kind = "crash dump";
    src_reason = Some d.Flight.d_reason;
    src_seed = Some d.Flight.d_seed;
    src_counters = d.Flight.d_counters;
    src_dropped =
      List.map (fun (dom, dropped, _) -> (dom, dropped)) d.Flight.d_domains;
    src_events = Flight.dump_events d;
  }

(* Reconstruct recorder events from a Chrome trace: the flight provider
   exports them as 'i' instants with cat "flight" and us-float
   timestamps. *)
let source_of_trace j =
  let open Telemetry.Json in
  let events =
    match member "traceEvents" j with
    | Some (List evs) -> evs
    | _ -> []
  in
  let flight_events =
    List.filter_map
      (fun ev ->
        match (member "cat" ev, member "name" ev) with
        | Some (String "flight"), Some (String name) -> (
          match Flight.Ev.of_name name with
          | None -> None
          | Some kind ->
            let int_of k obj =
              match member k obj with Some (Int i) -> i | _ -> 0
            in
            let ts =
              match member "ts" ev with
              | Some (Float us) -> int_of_float (us *. 1000.0)
              | Some (Int us) -> us * 1000
              | _ -> 0
            in
            let a1, a2, a3 =
              match member "args" ev with
              | Some (Obj _ as args) ->
                (int_of "a1" args, int_of "a2" args, int_of "a3" args)
              | _ -> (0, 0, 0)
            in
            Some
              {
                Flight.e_domain = int_of "tid" ev;
                e_ts = ts;
                e_kind = kind;
                e_a1 = a1;
                e_a2 = a2;
                e_a3 = a3;
              })
        | _ -> None)
      events
  in
  {
    src_kind = "chrome trace";
    src_reason = None;
    src_seed = None;
    src_counters =
      (match member "otherData" j with Some (Obj kvs) -> kvs | _ -> []);
    src_dropped = [];
    src_events =
      List.sort
        (fun a b -> compare a.Flight.e_ts b.Flight.e_ts)
        flight_events;
  }

let load path =
  let* text =
    try Ok (read_file path)
    with Sys_error m -> Error (Printf.sprintf "cannot read %s: %s" path m)
  in
  let* j =
    try Ok (Telemetry.Json.of_string text)
    with Telemetry.Json.Parse_error m ->
      Error (Printf.sprintf "%s: malformed JSON: %s" path m)
  in
  match Telemetry.Json.member "crashdump" j with
  | Some _ -> (
    try Ok (source_of_dump (Flight.dump_of_json j))
    with Flight.Bad_dump m -> Error (Printf.sprintf "%s: %s" path m))
  | None -> (
    match Telemetry.Json.member "traceEvents" j with
    | Some _ -> Ok (source_of_trace j)
    | None ->
      Error
        (Printf.sprintf
           "%s: neither a crash dump (no \"crashdump\" field) nor a Chrome \
            trace (no \"traceEvents\")"
           path))

(* ------------------------------------------------------------------ *)
(* Report sections                                                    *)
(* ------------------------------------------------------------------ *)

let print_header path src =
  Printf.printf "%s: %s, %d events across %d domain(s)\n" path src.src_kind
    (List.length src.src_events)
    (List.length
       (List.sort_uniq compare
          (List.map (fun e -> e.Flight.e_domain) src.src_events)));
  (match src.src_reason with
  | Some r -> Printf.printf "reason: %s\n" r
  | None -> ());
  (match src.src_seed with
  | Some s -> Printf.printf "seed: %d\n" s
  | None -> ());
  List.iter
    (fun (dom, dropped) ->
      if dropped > 0 then
        Printf.printf "domain %d: %d event(s) dropped by ring wraparound\n"
          dom dropped)
    src.src_dropped;
  let interesting = function
    | Telemetry.Json.Int 0 | Telemetry.Json.Float 0.0 -> false
    | _ -> true
  in
  let nonzero = List.filter (fun (_, v) -> interesting v) src.src_counters in
  if nonzero <> [] then begin
    Printf.printf "counters:\n";
    List.iter
      (fun (k, v) ->
        match v with
        | Telemetry.Json.Int i -> Printf.printf "  %-32s %d\n" k i
        | Telemetry.Json.Float f -> Printf.printf "  %-32s %.6f\n" k f
        | _ -> ())
      nonzero
  end

let print_heat src =
  let heat = Tree_shape.heat_of_events src.src_events in
  Format.printf "@.%a@." Tree_shape.pp_heat heat

let describe (e : Flight.event) =
  let open Flight in
  let node () =
    if e.e_a1 < 0 then "hinted leaf"
    else Printf.sprintf "level %d, bucket %d" e.e_a1 e.e_a2
  in
  match e.e_kind with
  | Ev.Validation_fail -> Printf.sprintf "validation failed (%s)" (node ())
  | Ev.Upgrade_fail -> Printf.sprintf "upgrade lost (%s)" (node ())
  | Ev.Restart -> Printf.sprintf "restart from root (attempt %d)" e.e_a1
  | Ev.Fallback ->
    Printf.sprintf "pessimistic fallback after %d attempts" e.e_a1
  | Ev.Lock_wait ->
    Printf.sprintf "contended write lock (waited %.3f us)"
      (float_of_int e.e_a1 /. 1e3)
  | Ev.Split -> Printf.sprintf "split (%s)" (node ())
  | Ev.Phase -> Printf.sprintf "phase %s" (Flight.phase_name e.e_a1)
  | Ev.Pool_job_start -> Printf.sprintf "pool job start (%d workers)" e.e_a1
  | Ev.Pool_job_end ->
    Printf.sprintf "pool job end (%.3f ms)" (float_of_int e.e_a1 /. 1e6)
  | Ev.Watchdog ->
    Printf.sprintf "watchdog trip (%d ms wall, %d ms deadline)" e.e_a1 e.e_a2
  | Ev.Chaos_fire ->
    let name =
      match List.nth_opt Chaos.Point.all e.e_a1 with
      | Some p -> Chaos.Point.name p
      | None -> Printf.sprintf "point#%d" e.e_a1
    in
    Printf.sprintf "chaos fired: %s" name
  | Ev.Gc_major ->
    Printf.sprintf "gc major cycle end (majors=%d minors=%d)" e.e_a1 e.e_a2

let print_timeline src last_n =
  match src.src_events with
  | [] -> print_endline "timeline: no events"
  | evs ->
    let total = List.length evs in
    let skip = max 0 (total - last_n) in
    let t0 = (List.hd evs).Flight.e_ts in
    Printf.printf "\ntimeline (%s%d events):\n"
      (if skip > 0 then Printf.sprintf "last %d of " last_n else "")
      total;
    List.iteri
      (fun i e ->
        if i >= skip then
          Printf.printf "  +%10.3f ms  d%-2d %s\n"
            (float_of_int (e.Flight.e_ts - t0) /. 1e6)
            e.Flight.e_domain (describe e))
      evs

(* Contention events within [window_ns] of a GC major-cycle end on the
   same domain are "GC-adjacent": a collection pause is the likely cause
   of the dead lease or the long wait. *)
let print_gc_overlap src =
  let window_ns = 1_000_000 in
  let contention = function
    | Flight.Ev.Validation_fail | Flight.Ev.Upgrade_fail
    | Flight.Ev.Lock_wait | Flight.Ev.Restart | Flight.Ev.Fallback ->
      true
    | _ -> false
  in
  let gcs =
    List.filter (fun e -> e.Flight.e_kind = Flight.Ev.Gc_major) src.src_events
  in
  let contention_events =
    List.filter (fun e -> contention e.Flight.e_kind) src.src_events
  in
  if gcs = [] then
    Printf.printf "\ngc overlap: no gc major-cycle events recorded\n"
  else begin
    let adjacent =
      List.filter
        (fun e ->
          List.exists
            (fun g -> abs (g.Flight.e_ts - e.Flight.e_ts) <= window_ns)
            gcs)
        contention_events
    in
    Printf.printf
      "\ngc overlap: %d major-cycle end(s); %d of %d contention event(s) \
       within %.1f ms of one\n"
      (List.length gcs) (List.length adjacent)
      (List.length contention_events)
      (float_of_int window_ns /. 1e6);
    List.iteri
      (fun i g ->
        if i < 8 then
          let near =
            List.length
              (List.filter
                 (fun e ->
                   abs (g.Flight.e_ts - e.Flight.e_ts) <= window_ns)
                 contention_events)
          in
          Printf.printf
            "  gc on d%d (majors=%d): %d contention event(s) nearby\n"
            g.Flight.e_domain g.Flight.e_a1 near)
      gcs
  end

let inspect path last_n =
  match load path with
  | Error m ->
    prerr_endline ("flightrec: " ^ m);
    1
  | Ok src ->
    print_header path src;
    print_heat src;
    print_timeline src last_n;
    print_gc_overlap src;
    0

(* ------------------------------------------------------------------ *)
(* CLI                                                                *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:
          "Crash dump (crashdump-<seed>.json) or Chrome trace (--trace \
           output) to inspect.")

let last_arg =
  Arg.(
    value & opt int 40
    & info [ "last"; "n" ] ~docv:"N"
        ~doc:"Show only the last $(docv) timeline events (default 40).")

let cmd =
  let doc = "inspect flight-recorder crash dumps and traces" in
  Cmd.v (Cmd.info "flightrec" ~doc) Term.(const inspect $ file_arg $ last_arg)

let () = exit (Cmd.eval' cmd)
