(* Driver for the concurrency-discipline linter: scans the given roots
   (default: lib bin) and fails the build on any finding.  Wired into
   `dune build @lint`. *)

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ -> [ "lib"; "bin" ]
  in
  let files, findings = Lint.check_roots roots in
  List.iter
    (fun f -> print_endline (Lint.finding_to_string f))
    findings;
  if findings = [] then (
    Printf.printf "lint: OK — %d files clean (%s)\n" (List.length files)
      (String.concat " " roots);
    exit 0)
  else (
    Printf.eprintf "lint: %d finding(s) in %d files scanned\n"
      (List.length findings) (List.length files);
    exit 1)
