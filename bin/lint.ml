(* CLI for the concurrency-discipline linter (lib/lint).

     lint.exe [--json] [--baseline FILE] [--write-baseline FILE] ROOTS...

   Without a baseline: print findings, exit 1 if any.  With --baseline:
   only findings not covered by the baseline fail the gate (the
   ratchet); entries that no longer fire are reported as shrinkable.
   --write-baseline regenerates the accepted set from the current
   findings.  --json emits the machine-consumable document instead of
   the human-readable lines.  Wired into `dune build @lint`. *)

let usage () =
  prerr_endline
    "usage: lint [--json] [--baseline FILE] [--write-baseline FILE] \
     [roots...]";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let json = ref false in
  let baseline_file = ref None in
  let write_baseline = ref None in
  let roots = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse_args rest
    | "--baseline" :: file :: rest ->
      baseline_file := Some file;
      parse_args rest
    | "--write-baseline" :: file :: rest ->
      write_baseline := Some file;
      parse_args rest
    | ("--baseline" | "--write-baseline") :: [] -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      usage ()
    | root :: rest ->
      roots := root :: !roots;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots =
    match List.rev !roots with [] -> [ "lib"; "bin" ] | rs -> rs
  in
  let files, findings = Lint.check_roots roots in
  (match !write_baseline with
  | Some path ->
    let entries = Lint.baseline_of_findings findings in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Lint.baseline_to_json entries));
    Printf.printf "lint: wrote %d baseline entr%s (%d finding(s)) to %s\n"
      (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      (List.length findings) path;
    exit 0
  | None -> ());
  match !baseline_file with
  | None ->
    if !json then print_string (Lint.findings_to_json findings)
    else begin
      List.iter (fun f -> print_endline (Lint.finding_to_string f)) findings;
      if findings = [] then
        Printf.printf "lint: OK — %d files clean (%s)\n" (List.length files)
          (String.concat " " roots)
      else
        Printf.eprintf "lint: %d finding(s) in %d files scanned\n"
          (List.length findings) (List.length files)
    end;
    exit (if findings = [] then 0 else 1)
  | Some path ->
    let entries =
      match Lint.baseline_of_json (read_file path) with
      | Ok entries -> entries
      | Error msg ->
        Printf.eprintf "lint: cannot read baseline %s: %s\n" path msg;
        exit 2
    in
    let fresh, stale = Lint.diff_baseline entries findings in
    if !json then print_string (Lint.findings_to_json fresh)
    else begin
      List.iter (fun f -> print_endline (Lint.finding_to_string f)) fresh;
      List.iter
        (fun (e, now) ->
          Printf.eprintf
            "lint: baseline entry can be shrunk: %s [%s] %S fires %d/%d \
             time(s)\n"
            e.Lint.be_file e.Lint.be_rule e.Lint.be_message now e.Lint.be_count)
        stale;
      if fresh = [] then
        Printf.printf
          "lint: OK — %d file(s), %d finding(s) all covered by %s (%d \
           shrinkable entr%s)\n"
          (List.length files) (List.length findings) path (List.length stale)
          (if List.length stale = 1 then "y" else "ies")
      else
        Printf.eprintf "lint: %d new finding(s) not in %s (%d files scanned)\n"
          (List.length fresh) path (List.length files)
    end;
    exit (if fresh = [] then 0 else 1)
